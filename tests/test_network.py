"""Unit tests for processes, the network, latency models and failure injection."""

from __future__ import annotations

import pytest

from repro.common.errors import QuorumUnavailableError, SimulationError
from repro.common.ids import Role, reader_id, server_id, writer_id
from repro.net.failures import FailureInjector, MessageLossModel, PartitionController
from repro.net.latency import AsymmetricLatency, CallableLatency, FixedLatency, UniformLatency
from repro.net.message import METADATA_FIELD_BYTES, Message, reply, request
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.sim.process import Process


class EchoServer(Process):
    """Replies to every request with an ack carrying the same body."""

    def on_message(self, src, message):
        if message.request_id is not None:
            self.send(src, reply(message, kind="ECHO", **message.body))


class Collector(Process):
    """Stores every unsolicited message it receives."""

    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


class TestMessages:
    def test_request_reply_round_trip_ids(self):
        req = request("PING", 7, x=1)
        assert req.request_id == 7
        resp = reply(req, kind="PONG", y=2)
        assert resp.in_reply_to == 7
        assert resp["y"] == 2

    def test_metadata_accounting(self):
        req = request("PING", 1, metadata_fields=3)
        assert req.metadata_bytes == 3 * METADATA_FIELD_BYTES
        assert req.total_bytes == req.metadata_bytes

    def test_data_bytes(self):
        req = request("PUT", 1, data_bytes=500)
        assert req.data_bytes == 500
        assert req.total_bytes == 500 + req.metadata_bytes

    def test_get_and_getitem(self):
        msg = Message(kind="X", body={"a": 1})
        assert msg["a"] == 1
        assert msg.get("missing", "default") == "default"


class TestLatencyModels:
    def test_fixed(self, sim):
        model = FixedLatency(2.5)
        assert model.sample(sim, writer_id(0), server_id(0)) == 2.5
        assert model.d == model.D == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_bounds(self, sim):
        model = UniformLatency(1.0, 4.0)
        draws = [model.sample(sim, writer_id(0), server_id(0)) for _ in range(200)]
        assert all(1.0 <= x <= 4.0 for x in draws)
        assert model.d == 1.0 and model.D == 4.0

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_asymmetric_override(self, sim):
        model = AsymmetricLatency(
            default=FixedLatency(10.0),
            overrides={(Role.RECONFIGURER, None): FixedLatency(1.0)},
        )
        from repro.common.ids import reconfigurer_id

        assert model.sample(sim, reconfigurer_id(0), server_id(0)) == 1.0
        assert model.sample(sim, writer_id(0), server_id(0)) == 10.0
        assert model.d == 1.0 and model.D == 10.0

    def test_callable_model(self, sim):
        model = CallableLatency(lambda s, a, b: 7.0, d=7.0, D=7.0)
        assert model.sample(sim, writer_id(0), server_id(0)) == 7.0


class TestNetworkDelivery:
    def test_message_delivered_after_latency(self, sim):
        network = Network(sim, latency=FixedLatency(3.0))
        sender = Collector(writer_id(0), network)
        receiver = Collector(server_id(0), network)
        sender.send(server_id(0), Message(kind="HELLO"))
        sim.run()
        assert len(receiver.received) == 1
        assert sim.now == 3.0

    def test_duplicate_registration_rejected(self, sim, network):
        Collector(writer_id(0), network)
        with pytest.raises(SimulationError):
            Collector(writer_id(0), network)

    def test_unknown_process_lookup(self, network):
        with pytest.raises(SimulationError):
            network.process(writer_id(99))

    def test_crashed_destination_drops_message(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        sender = Collector(writer_id(0), network)
        receiver = Collector(server_id(0), network)
        receiver.crash()
        sender.send(server_id(0), Message(kind="HELLO"))
        sim.run()
        assert receiver.received == []
        assert network.messages_dropped == 1

    def test_crashed_sender_does_not_send(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        sender = Collector(writer_id(0), network)
        receiver = Collector(server_id(0), network)
        sender.crash()
        sender.send(server_id(0), Message(kind="HELLO"))
        sim.run()
        assert receiver.received == []
        assert network.messages_sent == 0

    def test_stats_record_per_kind(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        sender = Collector(writer_id(0), network)
        Collector(server_id(0), network)
        sender.send(server_id(0), Message(kind="PUT", data_bytes=100))
        sender.send(server_id(0), Message(kind="PUT", data_bytes=50))
        sender.send(server_id(0), Message(kind="GET"))
        sim.run()
        assert network.stats.by_kind("PUT").messages == 2
        assert network.stats.by_kind("PUT").data_bytes == 150
        assert network.stats.by_kind("GET").messages == 1

    def test_observer_sees_messages(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        sender = Collector(writer_id(0), network)
        Collector(server_id(0), network)
        seen = []
        network.add_observer(lambda s, d, m, t: seen.append((s, d, m.kind, t)))
        sender.send(server_id(0), Message(kind="PING"))
        assert seen == [(writer_id(0), server_id(0), "PING", 1.0)]


class TestQuorumGathering:
    def _build(self, sim, num_servers=5):
        network = Network(sim, latency=FixedLatency(1.0))
        client = Collector(reader_id(0), network)
        servers = [EchoServer(server_id(i), network) for i in range(num_servers)]
        return network, client, servers

    def test_gather_resolves_at_threshold(self, sim):
        network, client, servers = self._build(sim)
        gather = client.broadcast_and_gather(
            [s.pid for s in servers], lambda rid: request("PING", rid), threshold=3)
        sim.run()
        assert gather.done()
        assert len(gather.result()) == 3
        # Once the quorum is reached the gather is deregistered; the two late
        # replies fall through to the client's ordinary message handler.
        assert len(gather.responses) == 3
        assert len(client.received) == 2

    def test_gather_fails_fast_without_enough_live_servers(self, sim):
        network, client, servers = self._build(sim, num_servers=3)
        servers[0].crash()
        servers[1].crash()
        with pytest.raises(QuorumUnavailableError):
            client.broadcast_and_gather(
                [s.pid for s in servers], lambda rid: request("PING", rid), threshold=3)

    def test_scatter_and_gather_custom_payloads(self, sim):
        network, client, servers = self._build(sim)
        def make_factory(index):
            return lambda rid: request("PING", rid, index=index)

        messages = {s.pid: make_factory(idx) for idx, s in enumerate(servers)}
        gather = client.scatter_and_gather(messages, threshold=5)
        sim.run()
        indices = sorted(msg["index"] for _, msg in gather.result())
        assert indices == [0, 1, 2, 3, 4]

    def test_crashed_process_aborts_spawned_coroutines(self, sim):
        network, client, servers = self._build(sim)

        def op():
            yield client.broadcast_and_gather(
                [s.pid for s in servers], lambda rid: request("PING", rid), threshold=5)
            return "finished"

        handle = client.spawn(op())
        client.crash()
        sim.run()
        assert handle.done()
        assert handle.exception() is not None


class TestFailureInjection:
    def test_crash_at_scheduled_time(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        victim = Collector(server_id(0), network)
        injector = FailureInjector(network)
        injector.crash_at(server_id(0), 5.0)
        sim.run_until(4.0)
        assert not victim.crashed
        sim.run_until(6.0)
        assert victim.crashed

    def test_crash_random_servers_respects_count(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        servers = [Collector(server_id(i), network) for i in range(6)]
        injector = FailureInjector(network)
        victims = injector.crash_random_servers([s.pid for s in servers], 2)
        assert len(victims) == 2
        assert len(set(victims)) == 2
        assert sum(1 for s in servers if s.crashed) == 2

    def test_crash_random_servers_too_many(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        servers = [Collector(server_id(i), network) for i in range(2)]
        injector = FailureInjector(network)
        with pytest.raises(ValueError):
            injector.crash_random_servers([s.pid for s in servers], 3)

    def test_max_tolerated_failures_formula(self, sim):
        injector = FailureInjector(Network(sim))
        assert injector.max_tolerated_failures(5, 3) == 1
        assert injector.max_tolerated_failures(9, 5) == 2
        assert injector.max_tolerated_failures(3, 1) == 1

    def test_partition_blocks_cross_group_traffic(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        b = Collector(server_id(0), network)
        controller = PartitionController(network)
        controller.partition([a.pid], [b.pid])
        a.send(b.pid, Message(kind="HELLO"))
        sim.run()
        assert b.received == []
        controller.heal()
        a.send(b.pid, Message(kind="HELLO"))
        sim.run()
        assert len(b.received) == 1

    def test_partition_for_heals_automatically(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        b = Collector(server_id(0), network)
        controller = PartitionController(network)
        controller.partition_for(5.0, [a.pid], [b.pid])
        sim.run_until(6.0)
        a.send(b.pid, Message(kind="AFTER"))
        sim.run()
        assert len(b.received) == 1

    def test_message_loss_model(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        b = Collector(server_id(0), network)
        MessageLossModel(network, loss_probability=1.0)
        a.send(b.pid, Message(kind="LOST"))
        sim.run()
        assert b.received == []

    def test_message_loss_rejects_bad_probability(self, sim):
        with pytest.raises(ValueError):
            MessageLossModel(Network(sim), loss_probability=1.5)


class TestTrafficScopes:
    def test_scope_attributes_traffic_to_owner(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        b = Collector(server_id(0), network)
        other = Collector(reader_id(0), network)
        scope = network.stats.open_scope("op", a.pid)
        a.send(b.pid, Message(kind="PUT", data_bytes=100))
        other.send(b.pid, Message(kind="PUT", data_bytes=999))
        record = network.stats.close_scope(scope)
        assert record.data_bytes == 100
        # traffic after closing the scope is not charged
        a.send(b.pid, Message(kind="PUT", data_bytes=50))
        assert record.data_bytes == 100

    def test_to_and_from(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        b = Collector(server_id(0), network)
        a.send(b.pid, Message(kind="PUT", data_bytes=10))
        sim.run()
        assert network.stats.to_and_from(a.pid).data_bytes == 10
        assert network.stats.to_and_from(b.pid).data_bytes == 10

    def test_summary_mentions_kinds(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(writer_id(0), network)
        Collector(server_id(0), network)
        a.send(server_id(0), Message(kind="SPECIAL-KIND"))
        assert "SPECIAL-KIND" in network.stats.summary()


class TestFastPathAndDuplicateAccounting:
    """PR 2: the zero-chaos fast path and per-copy traffic accounting."""

    def _pair(self, sim):
        network = Network(sim, latency=FixedLatency(1.0))
        a = Collector(server_id(0), network)
        b = Collector(server_id(1), network)
        return network, a, b

    def test_network_starts_quiet(self, sim):
        network, a, b = self._pair(sim)
        assert network._quiet is True

    def test_hooks_toggle_the_fast_path(self, sim):
        network, a, b = self._pair(sim)
        rule = lambda src, dest, message: False
        network.add_drop_filter(rule)
        assert network._quiet is False
        network.remove_drop_filter(rule)
        assert network._quiet is True
        adjuster = lambda src, dest, message, delay: delay
        network.add_delay_adjuster(adjuster)
        assert network._quiet is False
        network.remove_delay_adjuster(adjuster)
        assert network._quiet is True
        duplicator = lambda src, dest, message: 0
        network.add_duplicator(duplicator)
        assert network._quiet is False
        network.remove_duplicator(duplicator)
        assert network._quiet is True

    def test_fast_path_delivers_and_charges_stats(self, sim):
        network, a, b = self._pair(sim)
        a.send(b.pid, Message(kind="PUT", data_bytes=100))
        sim.run()
        assert len(b.received) == 1
        assert network.messages_delivered == 1
        assert network.stats.global_record.messages == 1
        assert network.stats.global_record.data_bytes == 100

    def test_fast_path_respects_crashed_destination(self, sim):
        network, a, b = self._pair(sim)
        b.crash()
        a.send(b.pid, Message(kind="PUT", data_bytes=10))
        sim.run()
        assert b.received == []
        assert network.messages_dropped == 1
        # Send-time bandwidth is still charged, as on the slow path.
        assert network.stats.global_record.messages == 1

    def test_duplicated_copies_consume_bandwidth(self, sim):
        network, a, b = self._pair(sim)
        network.add_duplicator(lambda src, dest, message: 2)
        a.send(b.pid, Message(kind="PUT", data_bytes=100, metadata_bytes=16))
        sim.run()
        # 1 original + 2 copies: all delivered, all on the wire.
        assert len(b.received) == 3
        assert network.messages_duplicated == 2
        assert network.stats.global_record.messages == 3
        assert network.stats.global_record.data_bytes == 300
        assert network.stats.global_record.metadata_bytes == 48
        assert network.stats.by_kind("PUT").messages == 3
        assert network.stats.link(a.pid, b.pid).messages == 3

    def test_dropped_message_still_charged_once(self, sim):
        network, a, b = self._pair(sim)
        network.add_drop_filter(lambda src, dest, message: True)
        network.add_duplicator(lambda src, dest, message: 5)
        a.send(b.pid, Message(kind="PUT", data_bytes=100))
        sim.run()
        # Dropped before duplication: only the send-time charge applies.
        assert b.received == []
        assert network.stats.global_record.messages == 1
        assert network.stats.global_record.data_bytes == 100

    def test_fast_and_slow_paths_deliver_identically(self):
        def run(with_noop_hook):
            sim = Simulator(seed=42)
            network = Network(sim, latency=UniformLatency(1.0, 2.0))
            a = Collector(server_id(0), network)
            b = Collector(server_id(1), network)
            if with_noop_hook:
                # A no-op adjuster forces the slow path without changing
                # behaviour; the delivery schedule must match the fast path.
                network.add_delay_adjuster(lambda src, dest, message, delay: delay)
            for i in range(50):
                a.send(b.pid, Message(kind="PING", data_bytes=i))
            sim.run()
            return [(m.data_bytes, round(sim.now, 6)) for _s, m in b.received]

        assert run(False) == run(True)
