"""Unit tests for the specification-checking machinery itself.

The linearizability checker and the DAP property checker are test oracles;
these tests make sure the oracles accept correct histories and, crucially,
reject incorrect ones (otherwise the protocol tests would be vacuous).
"""

from __future__ import annotations

import pytest

from repro.common.ids import config_id, reader_id, writer_id
from repro.common.tags import BOTTOM_TAG, Tag, TagValue
from repro.common.values import Value
from repro.sim.core import Simulator
from repro.spec.history import History, OperationType
from repro.spec.linearizability import check_linearizability, check_tag_monotonicity
from repro.spec.properties import DapRecorder, check_dap_properties


def record(history, process, op_type, start, end, label=None, tag=None, failed=False):
    entry = history.invoke(process, op_type, start, value_label=label)
    if end is None:
        return entry
    if failed:
        history.fail(entry, end)
    else:
        history.respond(entry, end, value_label=label, tag=tag)
    return entry


class TestHistory:
    def test_latency_and_completeness(self):
        history = History()
        op = record(history, writer_id(0), OperationType.WRITE, 1.0, 4.0, label="a")
        assert op.complete
        assert op.latency == pytest.approx(3.0)
        pending = history.invoke(reader_id(0), OperationType.READ, 2.0)
        assert not pending.complete
        assert pending.latency is None

    def test_precedes(self):
        history = History()
        first = record(history, writer_id(0), OperationType.WRITE, 1.0, 2.0, label="a")
        second = record(history, reader_id(0), OperationType.READ, 3.0, 4.0, label="a")
        overlapping = record(history, reader_id(1), OperationType.READ, 1.5, 3.5, label="a")
        assert first.precedes(second)
        assert not second.precedes(first)
        assert not first.precedes(overlapping)

    def test_filters(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 1.0, 2.0, label="a")
        record(history, reader_id(0), OperationType.READ, 3.0, 4.0, label="a")
        history.invoke(writer_id(1), OperationType.WRITE, 5.0, value_label="pending")
        assert len(history.writes()) == 2
        assert len(history.writes(complete_only=False)) == 2
        assert len(history.reads()) == 1
        assert len(history.operations(complete_only=True)) == 2
        assert len(history) == 3

    def test_failed_operations_excluded_from_complete(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 1.0, 2.0, label="a", failed=True)
        assert history.operations(complete_only=True) == []


class TestLinearizabilityChecker:
    def test_accepts_sequential_history(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        record(history, reader_id(0), OperationType.READ, 2.0, 3.0, label="a")
        record(history, writer_id(0), OperationType.WRITE, 4.0, 5.0, label="b")
        record(history, reader_id(0), OperationType.READ, 6.0, 7.0, label="b")
        assert check_linearizability(history).ok

    def test_rejects_stale_read(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        record(history, writer_id(0), OperationType.WRITE, 2.0, 3.0, label="b")
        # Read strictly after write(b) returns the old value "a": not atomic.
        record(history, reader_id(0), OperationType.READ, 4.0, 5.0, label="a")
        result = check_linearizability(history)
        assert not result.ok

    def test_rejects_value_from_nowhere(self):
        history = History()
        record(history, reader_id(0), OperationType.READ, 0.0, 1.0, label="ghost")
        result = check_linearizability(history)
        assert not result.ok
        assert "no write" in result.reason

    def test_rejects_new_old_inversion(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        record(history, writer_id(1), OperationType.WRITE, 2.0, 3.0, label="b")
        record(history, reader_id(0), OperationType.READ, 4.0, 5.0, label="b")
        record(history, reader_id(1), OperationType.READ, 6.0, 7.0, label="a")
        assert not check_linearizability(history).ok

    def test_accepts_concurrent_reads_of_either_value(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        # Write of b overlaps both reads: either value is acceptable.
        record(history, writer_id(1), OperationType.WRITE, 2.0, 10.0, label="b")
        record(history, reader_id(0), OperationType.READ, 3.0, 4.0, label="a")
        record(history, reader_id(1), OperationType.READ, 5.0, 6.0, label="b")
        assert check_linearizability(history).ok

    def test_rejects_read_preceding_its_write(self):
        history = History()
        record(history, reader_id(0), OperationType.READ, 0.0, 1.0, label="late")
        record(history, writer_id(0), OperationType.WRITE, 2.0, 3.0, label="late")
        assert not check_linearizability(history).ok

    def test_pending_write_may_or_may_not_take_effect(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        # Incomplete write of "b" (writer crashed): a later read of either
        # "a" or "b" is fine.
        history.invoke(writer_id(1), OperationType.WRITE, 2.0, value_label="b")
        record(history, reader_id(0), OperationType.READ, 3.0, 4.0, label="b")
        assert check_linearizability(history).ok

        history2 = History()
        record(history2, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        history2.invoke(writer_id(1), OperationType.WRITE, 2.0, value_label="b")
        record(history2, reader_id(0), OperationType.READ, 3.0, 4.0, label="a")
        assert check_linearizability(history2).ok

    def test_reads_before_any_write_must_return_initial(self):
        history = History()
        record(history, reader_id(0), OperationType.READ, 0.0, 1.0, label="v0")
        record(history, writer_id(0), OperationType.WRITE, 2.0, 3.0, label="a")
        assert check_linearizability(history).ok

    def test_empty_history_is_linearizable(self):
        assert check_linearizability(History()).ok

    def test_witness_order_is_reported(self):
        history = History()
        w = record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a")
        r = record(history, reader_id(0), OperationType.READ, 2.0, 3.0, label="a")
        result = check_linearizability(history)
        assert result.ok
        assert result.order.index(w.op_id) < result.order.index(r.op_id)


class TestTagMonotonicity:
    def test_accepts_monotone_tags(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a",
               tag=Tag(1, writer_id(0)))
        record(history, reader_id(0), OperationType.READ, 2.0, 3.0, label="a",
               tag=Tag(1, writer_id(0)))
        assert check_tag_monotonicity(history) is None

    def test_rejects_decreasing_tags(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a",
               tag=Tag(5, writer_id(0)))
        record(history, reader_id(0), OperationType.READ, 2.0, 3.0, label="stale",
               tag=Tag(1, writer_id(0)))
        assert check_tag_monotonicity(history) is not None

    def test_rejects_non_increasing_tag_after_write(self):
        history = History()
        record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, label="a",
               tag=Tag(2, writer_id(0)))
        record(history, writer_id(1), OperationType.WRITE, 2.0, 3.0, label="b",
               tag=Tag(2, writer_id(0)))
        assert check_tag_monotonicity(history) is not None


class TestDapPropertyChecker:
    def _recorder(self):
        return DapRecorder(Simulator(seed=0))

    def test_clean_record_has_no_violations(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        cfg = config_id(0)
        pair = TagValue(Tag(1, writer_id(0)), Value.of_size(4, label="a"))
        token = recorder.start(cfg, writer_id(0), "put-data", pair)
        sim.run_until(1.0)
        token.finish(None)
        token = recorder.start(cfg, reader_id(0), "get-data")
        sim.run_until(2.0)
        token.finish(pair)
        assert check_dap_properties(recorder) == []

    def test_c1_violation_detected(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        cfg = config_id(0)
        pair = TagValue(Tag(5, writer_id(0)), Value.of_size(4, label="a"))
        token = recorder.start(cfg, writer_id(0), "put-data", pair)
        sim.run_until(1.0)
        token.finish(None)
        # A later get-tag returns a smaller tag: violates C1.
        sim.run_until(1.5)
        token = recorder.start(cfg, reader_id(0), "get-tag")
        sim.run_until(2.0)
        token.finish(Tag(1, writer_id(0)))
        violations = check_dap_properties(recorder)
        assert any(v.property_name == "C1" for v in violations)

    def test_c2_violation_detected(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        cfg = config_id(0)
        # get-data returns a tag no put-data ever produced.
        token = recorder.start(cfg, reader_id(0), "get-data")
        sim.run_until(1.0)
        token.finish(TagValue(Tag(9, writer_id(0)), Value.of_size(4, label="ghost")))
        violations = check_dap_properties(recorder)
        assert any(v.property_name == "C2" for v in violations)

    def test_c2_allows_initial_pair(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        cfg = config_id(0)
        token = recorder.start(cfg, reader_id(0), "get-data")
        sim.run_until(1.0)
        token.finish(TagValue(BOTTOM_TAG, Value.of_size(0, label="v0")))
        assert check_dap_properties(recorder) == []

    def test_c3_violation_detected_only_when_requested(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        cfg = config_id(0)
        pair_high = TagValue(Tag(5, writer_id(0)), Value.of_size(4, label="b"))
        pair_low = TagValue(Tag(1, writer_id(0)), Value.of_size(4, label="a"))
        # The low put completes; the high put stays pending, so C1 does not
        # constrain the reads and only the C3 regression is exercised.
        token = recorder.start(cfg, writer_id(0), "put-data", pair_low)
        token.finish(None)
        recorder.start(cfg, writer_id(1), "put-data", pair_high)  # never finishes
        token = recorder.start(cfg, reader_id(0), "get-data")
        sim.run_until(1.0)
        token.finish(pair_high)
        sim.run_until(1.5)
        token = recorder.start(cfg, reader_id(1), "get-data")
        sim.run_until(2.0)
        token.finish(pair_low)
        assert check_dap_properties(recorder) == []
        violations = check_dap_properties(recorder, check_c3=True)
        assert any(v.property_name == "C3" for v in violations)

    def test_per_configuration_isolation(self):
        sim = Simulator(seed=0)
        recorder = DapRecorder(sim)
        pair = TagValue(Tag(3, writer_id(0)), Value.of_size(4, label="a"))
        token = recorder.start(config_id(0), writer_id(0), "put-data", pair)
        sim.run_until(1.0)
        token.finish(None)
        # In a different configuration a later get-tag may legitimately
        # return a smaller tag (C1 is a per-configuration property).
        token = recorder.start(config_id(1), reader_id(0), "get-tag")
        sim.run_until(2.0)
        token.finish(BOTTOM_TAG)
        assert check_dap_properties(recorder) == []
        assert len(recorder.configurations()) == 2
