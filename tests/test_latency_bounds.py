"""Tests validating the Section 4.4 latency analysis against the simulator.

The simulator lets us fix ``d = D`` (FixedLatency), so the analytic bounds
become exact envelopes that measured latencies must respect.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import (
    LatencyEnvelope,
    read_config_bounds,
    reconfig_pipeline_lower_bound,
    rw_operation_upper_bound,
)
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import FixedLatency
from repro.spec.history import OperationType


def fixed_deployment(delay=1.0, consensus_delay=0.0, **overrides):
    defaults = dict(num_servers=5, initial_dap="treas", delta=4, num_writers=1,
                    num_readers=1, num_reconfigurers=1, seed=0,
                    latency=FixedLatency(delay), consensus_delay=consensus_delay)
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestReadConfigLatency:
    def test_single_configuration_read_config_within_bounds(self):
        delay = 1.0
        dep = fixed_deployment(delay=delay)
        client = dep.readers[0]
        start = dep.sim.now
        handle = client.spawn(client.read_config(client.cseq))
        dep.sim.run_until_complete(handle)
        elapsed = dep.sim.now - start
        low, high = read_config_bounds(delay, delay, mu=0, nu=0)
        # One round of read-next-config is 2 delays; the paper's 4d(ν−µ+1)
        # bound also budgets the put-config of each discovered link, so the
        # measured time must not exceed the upper bound.
        assert 0 < elapsed <= high

    def test_read_config_grows_with_installed_configurations(self):
        delay = 1.0
        dep = fixed_deployment(delay=delay)
        for _ in range(2):
            cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
            dep.reconfig(cfg, 0)
        client = dep.readers[0]
        start = dep.sim.now
        handle = client.spawn(client.read_config(client.cseq))
        dep.sim.run_until_complete(handle)
        elapsed_long = dep.sim.now - start
        # A client that already knows the chain traverses it again cheaply.
        start = dep.sim.now
        handle = client.spawn(client.read_config(client.cseq))
        dep.sim.run_until_complete(handle)
        elapsed_short = dep.sim.now - start
        assert elapsed_long > elapsed_short
        low, high = read_config_bounds(delay, delay, mu=0, nu=2)
        assert elapsed_long <= high


class TestOperationLatency:
    @pytest.mark.parametrize("delay", [0.5, 1.0, 2.0])
    def test_rw_latency_within_lemma59_bound(self, delay):
        dep = fixed_deployment(delay=delay)
        dep.write(Value.of_size(64, label="x"), 0)
        dep.read(0)
        bound = rw_operation_upper_bound(delay, mu_start=0, nu_end=0)
        for latency in dep.history.latencies():
            assert latency <= bound

    def test_rw_latency_scales_with_discovered_configurations(self):
        delay = 1.0
        dep = fixed_deployment(delay=delay)
        baseline_tag = dep.write(Value.of_size(32, label="base"), 0)
        baseline_latency = dep.history.writes()[-1].latency
        for _ in range(3):
            cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
            dep.reconfig(cfg, 0)
        # A fresh writer (empty local sequence) now has to traverse 4
        # configurations: its write takes longer than the baseline write, but
        # stays within the Lemma 59 envelope for ν = 3.
        dep.write(Value.of_size(32, label="after"), 0)
        long_latency = dep.history.writes()[-1].latency
        assert long_latency > baseline_latency
        assert long_latency <= rw_operation_upper_bound(delay, mu_start=0, nu_end=3)


class TestReconfigLatency:
    @pytest.mark.parametrize("consensus_delay", [0.0, 10.0])
    def test_single_reconfig_latency_exceeds_floor(self, consensus_delay):
        delay = 1.0
        dep = fixed_deployment(delay=delay, consensus_delay=consensus_delay)
        cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg, 0)
        latency = dep.history.reconfigs()[0].latency
        floor = reconfig_pipeline_lower_bound(delay, consensus_delay, k=1)
        assert latency >= floor

    def test_back_to_back_reconfigs_respect_pipeline_bound(self):
        delay = 1.0
        consensus_delay = 5.0
        dep = fixed_deployment(delay=delay, consensus_delay=consensus_delay)
        count = 3
        start = dep.sim.now
        for _ in range(count):
            cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
            dep.reconfig(cfg, 0)
        elapsed = dep.sim.now - start
        floor = reconfig_pipeline_lower_bound(delay, consensus_delay, k=count)
        assert elapsed >= floor

    def test_consensus_delay_knob_slows_reconfiguration_only(self):
        fast = fixed_deployment(consensus_delay=0.0)
        slow = fixed_deployment(consensus_delay=50.0)
        for dep in (fast, slow):
            cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
            dep.reconfig(cfg, 0)
            dep.write(Value.of_size(16, label="x"), 0)
        fast_reconfig = fast.history.reconfigs()[0].latency
        slow_reconfig = slow.history.reconfigs()[0].latency
        assert slow_reconfig >= fast_reconfig + 50.0
        fast_write = fast.history.writes()[0].latency
        slow_write = slow.history.writes()[0].latency
        assert slow_write == pytest.approx(fast_write)


class TestEnvelopeConsistency:
    def test_envelope_matches_module_functions(self):
        envelope = LatencyEnvelope(d=1.0, D=2.0, consensus_delay=3.0)
        assert envelope.read_config(0, 2) == read_config_bounds(1.0, 2.0, 0, 2)
        assert envelope.rw_operation(0, 2) == rw_operation_upper_bound(2.0, 0, 2)
        assert envelope.reconfig_pipeline(4) == reconfig_pipeline_lower_bound(1.0, 3.0, 4)
