"""Unit tests for futures and the coroutine runner."""

from __future__ import annotations

import pytest

from repro.common.errors import OperationAborted, SimulationError
from repro.sim.core import Simulator
from repro.sim.futures import (
    Coroutine,
    QuorumFuture,
    SimFuture,
    Timer,
    all_of,
    any_of,
    spawn,
)


class TestSimFuture:
    def test_set_result(self, sim):
        fut = SimFuture(sim)
        assert not fut.done()
        fut.set_result(5)
        assert fut.done()
        assert fut.result() == 5

    def test_set_exception(self, sim):
        fut = SimFuture(sim)
        fut.set_exception(ValueError("boom"))
        assert fut.done()
        with pytest.raises(ValueError):
            fut.result()
        assert isinstance(fut.exception(), ValueError)

    def test_result_before_done_raises(self, sim):
        fut = SimFuture(sim)
        with pytest.raises(SimulationError):
            fut.result()

    def test_double_resolution_rejected(self, sim):
        fut = SimFuture(sim)
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)

    def test_try_set_result(self, sim):
        fut = SimFuture(sim)
        assert fut.try_set_result(1) is True
        assert fut.try_set_result(2) is False
        assert fut.result() == 1

    def test_callback_after_done_runs_immediately(self, sim):
        fut = SimFuture(sim)
        fut.set_result("x")
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]

    def test_callback_before_done_runs_on_resolution(self, sim):
        fut = SimFuture(sim)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == []
        fut.set_result(3)
        assert seen == [3]


class TestQuorumFuture:
    def test_resolves_at_threshold(self, sim):
        fut = QuorumFuture(sim, threshold=3)
        fut.add_response("a")
        fut.add_response("b")
        assert not fut.done()
        fut.add_response("c")
        assert fut.done()
        assert fut.result() == ["a", "b", "c"]

    def test_late_responses_do_not_change_result(self, sim):
        fut = QuorumFuture(sim, threshold=1)
        fut.add_response("first")
        fut.add_response("late")
        assert fut.result() == ["first"]
        assert len(fut.responses) == 2

    def test_zero_threshold_resolves_immediately(self, sim):
        fut = QuorumFuture(sim, threshold=0)
        assert fut.done()
        assert fut.result() == []

    def test_negative_threshold_rejected(self, sim):
        with pytest.raises(SimulationError):
            QuorumFuture(sim, threshold=-1)


class TestTimerAndCombinators:
    def test_timer_resolves_after_delay(self, sim):
        timer = Timer(sim, 5.0)
        sim.run()
        assert timer.done()
        assert sim.now == 5.0

    def test_timer_cancel(self, sim):
        timer = Timer(sim, 5.0)
        timer.cancel()
        sim.run()
        assert not timer.done()

    def test_all_of(self, sim):
        futures = [SimFuture(sim) for _ in range(3)]
        combined = all_of(sim, futures)
        for index, fut in enumerate(futures):
            assert not combined.done()
            fut.set_result(index)
        assert combined.done()
        assert combined.result() == [0, 1, 2]

    def test_all_of_empty(self, sim):
        assert all_of(sim, []).result() == []

    def test_all_of_propagates_exception(self, sim):
        futures = [SimFuture(sim), SimFuture(sim)]
        combined = all_of(sim, futures)
        futures[0].set_exception(RuntimeError("bad"))
        assert combined.done()
        with pytest.raises(RuntimeError):
            combined.result()

    def test_any_of(self, sim):
        futures = [SimFuture(sim) for _ in range(3)]
        combined = any_of(sim, futures)
        futures[1].set_result("winner")
        assert combined.result() == "winner"
        futures[0].set_result("late")
        assert combined.result() == "winner"

    def test_any_of_requires_futures(self, sim):
        with pytest.raises(SimulationError):
            any_of(sim, [])


class TestCoroutines:
    def test_simple_coroutine_returns_value(self, sim):
        def co():
            yield Timer(sim, 2.0)
            return "done"

        handle = spawn(sim, co())
        result = sim.run_until_complete(handle)
        assert result == "done"
        assert sim.now >= 2.0

    def test_yield_numeric_delay(self, sim):
        def co():
            yield 3.0
            return sim.now

        handle = spawn(sim, co())
        assert sim.run_until_complete(handle) >= 3.0

    def test_nested_yield_from(self, sim):
        def inner():
            yield Timer(sim, 1.0)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        handle = spawn(sim, outer())
        assert sim.run_until_complete(handle) == 20

    def test_exception_propagates_to_completion(self, sim):
        def co():
            yield Timer(sim, 1.0)
            raise ValueError("inside")

        handle = spawn(sim, co())
        sim.run()
        assert handle.done()
        with pytest.raises(ValueError):
            handle.result()

    def test_yielding_garbage_fails_cleanly(self, sim):
        def co():
            yield "not a future"

        handle = spawn(sim, co())
        sim.run()
        assert isinstance(handle.exception(), SimulationError)

    def test_exception_from_awaited_future_is_thrown_in(self, sim):
        fut = SimFuture(sim)

        def co():
            try:
                yield fut
            except RuntimeError:
                return "caught"
            return "not caught"

        handle = spawn(sim, co())
        sim.schedule(1.0, lambda: fut.set_exception(RuntimeError("x")))
        assert sim.run_until_complete(handle) == "caught"

    def test_abort_fails_completion(self, sim):
        fut = SimFuture(sim)

        def co():
            yield fut
            return "never"

        handle = spawn(sim, co())
        handle.abort("client crashed")
        assert handle.done()
        assert isinstance(handle.exception(), OperationAborted)

    def test_run_until_complete_detects_starvation(self, sim):
        fut = SimFuture(sim)

        def co():
            yield fut

        handle = spawn(sim, co())
        with pytest.raises(SimulationError):
            sim.run_until_complete(handle)

    def test_concurrent_coroutines_interleave(self, sim):
        order = []

        def co(name, delay):
            yield Timer(sim, delay)
            order.append(name)
            yield Timer(sim, delay)
            order.append(name)

        spawn(sim, co("slow", 3.0))
        spawn(sim, co("fast", 1.0))
        sim.run()
        assert order == ["fast", "fast", "slow", "slow"]
