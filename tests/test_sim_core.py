"""Unit tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.core import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim: Simulator):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_insertion_order(self, sim: Simulator):
        fired = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self, sim: Simulator):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.schedule(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5, 7.0]

    def test_negative_delay_rejected(self, sim: Simulator):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim: Simulator):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, sim: Simulator):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_args_prebinding(self, sim: Simulator):
        fired = []
        sim.schedule(1.0, fired.append, args=("a",))
        sim.call_soon(fired.append, args=("now",))
        sim.schedule_at(2.0, lambda x, y: fired.append(x + y), args=(1, 2))
        sim.run()
        assert fired == ["now", "a", 3]

    def test_call_soon_merges_with_heap_by_insertion_order(self, sim: Simulator):
        # call_soon rides a FIFO fast lane; zero-delay heap events scheduled
        # later must still fire later (global (time, seq) order).
        fired = []
        sim.call_soon(lambda: fired.append("fifo-1"))
        sim.schedule(0.0, lambda: fired.append("heap-1"))
        sim.call_soon(lambda: fired.append("fifo-2"))
        sim.schedule(1.0, lambda: fired.append("later"))
        sim.run()
        assert fired == ["fifo-1", "heap-1", "fifo-2", "later"]

    def test_call_soon_during_event_runs_before_later_times(self, sim: Simulator):
        fired = []

        def outer():
            fired.append("outer")
            sim.call_soon(lambda: fired.append("soon"))

        sim.schedule(1.0, outer)
        sim.schedule(2.0, lambda: fired.append("after"))
        sim.run()
        assert fired == ["outer", "soon", "after"]

    def test_call_soon_runs_after_already_queued_same_time(self, sim: Simulator):
        fired = []
        sim.schedule(0.0, lambda: fired.append("first"))
        sim.call_soon(lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_nested_scheduling(self, sim: Simulator):
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]


class TestRunControl:
    def test_run_until_leaves_later_events(self, sim: Simulator):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_backwards_rejected(self, sim: Simulator):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_run_livelock_guard(self, sim: Simulator):
        def reschedule():
            sim.schedule(0.1, reschedule)

        sim.schedule(0.1, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self, sim: Simulator):
        assert sim.step() is False

    def test_events_processed_counter(self, sim: Simulator):
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancellationAccounting:
    def test_pending_events_excludes_cancelled(self, sim: Simulator):
        live = sim.schedule(1.0, lambda: None)
        doomed = sim.schedule(2.0, lambda: None)
        fifo_doomed = sim.call_soon(lambda: None)
        assert sim.pending_events == 3
        doomed.cancel()
        fifo_doomed.cancel()
        assert sim.pending_events == 1
        assert sim.cancelled_events == 2
        sim.run()
        assert sim.events_processed == 1
        assert sim.pending_events == 0
        assert live.cancelled is False

    def test_cancel_is_idempotent(self, sim: Simulator):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.cancelled_events == 1
        assert sim.pending_events == 0

    def test_cancel_after_fire_does_not_skew_counters(self, sim: Simulator):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()  # already fired: a no-op, not a cancellation
        assert sim.pending_events == 1
        assert sim.cancelled_events == 0

    def test_mass_cancellation_compacts_the_heap(self, sim: Simulator):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for event in events[:400]:
            event.cancel()
        # Lazy deletion must have compacted: the queue holds far fewer
        # entries than were scheduled, and the live count is exact.
        assert sim.pending_events == 100
        assert len(sim._queue) < 250
        assert sim.cancelled_events == 400
        sim.run()
        assert sim.events_processed == 100

    def test_cancelled_events_skipped_by_run_until(self, sim: Simulator):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2)).cancel()
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(2.5)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 3]


class TestDeterminism:
    def test_same_seed_same_draws(self):
        first = [Simulator(seed=7).uniform(0, 1) for _ in range(1)]
        second = [Simulator(seed=7).uniform(0, 1) for _ in range(1)]
        assert first == second

    def test_different_seed_different_draws(self):
        a = Simulator(seed=1).uniform(0, 1)
        b = Simulator(seed=2).uniform(0, 1)
        assert a != b

    def test_uniform_bounds(self, sim: Simulator):
        for _ in range(100):
            draw = sim.uniform(2.0, 5.0)
            assert 2.0 <= draw <= 5.0

    def test_uniform_degenerate(self, sim: Simulator):
        assert sim.uniform(3.0, 3.0) == 3.0

    def test_uniform_invalid(self, sim: Simulator):
        with pytest.raises(SimulationError):
            sim.uniform(5.0, 2.0)

    def test_exponential_positive(self, sim: Simulator):
        assert sim.exponential(2.0) > 0
        with pytest.raises(SimulationError):
            sim.exponential(0)

    def test_shuffle_and_choice_are_deterministic(self):
        items = list(range(10))
        a = Simulator(seed=3).shuffle(items)
        b = Simulator(seed=3).shuffle(items)
        assert a == b
        assert sorted(a) == items
        assert Simulator(seed=3).choice(items) == Simulator(seed=3).choice(items)


class TestTrace:
    def test_trace_records_labelled_events(self, sim: Simulator):
        sim.enable_trace()
        sim.schedule(1.0, lambda: None, label="hello")
        sim.schedule(2.0, lambda: None)  # unlabelled, not traced
        sim.run()
        assert len(sim.trace) == 1
        assert "hello" in sim.trace[0]
