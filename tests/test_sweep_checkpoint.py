"""Checkpoint/resume: the journal format and the identical-merge guarantee.

The acceptance gate lives here: a campaign interrupted at ~50% (by budget
truncation, by an interrupt raised mid-stream, or by a crashing cell) and
resumed from its journal must produce a :class:`SweepResult` identical --
signature hashes, pass/fail matrix, checker-method counts -- to an
uninterrupted run of the same grid.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import (Checkpoint, CheckpointError, RunRecord, SweepGrid,
                         campaign, execute_run, grid_fingerprint)
from repro.sweep.grid import RunSpec

GRID = SweepGrid(scenarios=("abd_crash_minority", "treas_crash_server"),
                 seeds=(0, 1))


def _record(seed: int = 0) -> RunRecord:
    return execute_run(RunSpec("abd_crash_minority", seed))


class TestGridFingerprint:
    def test_deterministic(self):
        assert grid_fingerprint(GRID) == grid_fingerprint(GRID)

    def test_sensitive_to_grid_and_mode(self):
        other = SweepGrid(scenarios=("abd_crash_minority",), seeds=(0, 1))
        assert grid_fingerprint(GRID) != grid_fingerprint(other)
        assert grid_fingerprint(GRID) != grid_fingerprint(GRID, streaming=True)


class TestRunRecordRoundTrip:
    def test_from_json_is_exact_for_gate_fields(self):
        record = _record()
        clone = RunRecord.from_json(record.to_json())
        assert clone.cell_id == record.cell_id
        assert clone.signature_hash == record.signature_hash
        assert clone.ok == record.ok and clone.failure == record.failure
        assert clone.checker_method == record.checker_method
        assert clone.params == record.params
        assert clone.read_latency == record.read_latency

    def test_failed_record_round_trips(self):
        record = execute_run(RunSpec("no_such_scenario", 0))
        clone = RunRecord.from_json(record.to_json())
        assert not clone.ok and "cell crashed" in clone.failure


class TestCheckpointFile:
    def test_fresh_journal_has_header_and_records(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "sweep-checkpoint"
        assert header["grid_hash"] == grid_fingerprint(GRID)
        assert json.loads(lines[1])["kind"] == "record"

    def test_existing_journal_requires_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record())
        with pytest.raises(CheckpointError, match="already exists"):
            Checkpoint.open(path, GRID)

    def test_resume_replays_records(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        record = _record()
        with Checkpoint.open(path, GRID) as journal:
            journal.append(record)
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert journal.records[record.cell_id].signature_hash == \
                record.signature_hash

    def test_resume_rejects_other_grid_or_mode(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        Checkpoint.open(path, GRID).close()
        other = SweepGrid(scenarios=("abd_crash_minority",), seeds=(0,))
        with pytest.raises(CheckpointError, match="different"):
            Checkpoint.open(path, other, resume=True)
        with pytest.raises(CheckpointError, match="different"):
            Checkpoint.open(path, GRID, streaming=True, resume=True)

    def test_resume_against_missing_file_starts_fresh(self, tmp_path):
        journal = Checkpoint.open(tmp_path / "new.ckpt", GRID, resume=True)
        assert journal.records == {}
        journal.close()

    def test_truncated_final_line_is_dropped(self, tmp_path):
        # Exactly what a hard kill mid-write leaves behind: the partial
        # cell simply re-runs on resume.
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record(0))
            journal.append(_record(1))
        with path.open("a") as file:
            file.write('{"kind": "record", "record": {"scena')
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert len(journal.records) == 2

    def test_resume_truncates_partial_write_before_appending(self, tmp_path):
        # The failure mode a hard kill sets up: resuming over a partial
        # trailing line must not concatenate the next record onto it (which
        # silently dropped the first post-resume record and made every
        # later resume fail on the merged mid-file line).
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record(0))
        with path.open("a") as file:
            file.write('{"kind": "record", "record": {"scena')
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert len(journal.records) == 1
            journal.append(_record(1))
            journal.append(_record(2))
        # Every line is whole JSON again (the partial write was truncated
        # off before appending)...
        for line in path.read_text().splitlines():
            json.loads(line)
        # ...so a further resume replays every journaled record.
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert len(journal.records) == 3

    def test_bad_record_payload_final_line_is_dropped(self, tmp_path):
        # Valid JSON whose payload is not a RunRecord rendering (a params
        # field of the wrong type) is tolerated as a trailing partial
        # write, not an unhandled traceback.
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record(0))
        with path.open("a") as file:
            file.write('{"kind": "record", "record": '
                       '{"scenario": "x", "seed": 0, "params": "zap"}}\n')
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert len(journal.records) == 1

    def test_bad_record_payload_middle_line_raises(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record(0))
        lines = path.read_text().splitlines()
        lines.insert(1, '{"kind": "record", "record": '
                        '{"scenario": "x", "seed": 0, "params": "zap"}}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            Checkpoint.open(path, GRID, resume=True)

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        with Checkpoint.open(path, GRID) as journal:
            journal.append(_record(0))
        lines = path.read_text().splitlines()
        lines.insert(1, "not json at all")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            Checkpoint.open(path, GRID, resume=True)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointError, match="not a schema"):
            Checkpoint.open(path, GRID, resume=True)

    def test_append_after_close_raises(self, tmp_path):
        journal = Checkpoint.open(tmp_path / "sweep.ckpt", GRID)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(CheckpointError, match="closed"):
            journal.append(_record())


def _assert_identical(resumed, full):
    """The acceptance criterion: resumed merge == uninterrupted run."""
    assert resumed.complete
    assert resumed.signature_map() == full.signature_map()
    assert resumed.pass_matrix() == full.pass_matrix()
    assert resumed.checker_method_counts() == full.checker_method_counts()
    assert [r.cell_id for r in resumed.records] == \
        [r.cell_id for r in full.records]


class TestResumeCampaigns:
    def test_interrupt_at_half_then_resume_is_identical(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        full = campaign(GRID, jobs=1)
        half = campaign(GRID, jobs=1, checkpoint=path, max_cells=2)
        assert not half.complete and len(half.records) == 2
        resumed = campaign(GRID, jobs=2, checkpoint=path, resume=True)
        assert resumed.resumed_cells == 2
        _assert_identical(resumed, full)

    def test_interrupt_raised_mid_stream_then_resume(self, tmp_path):
        # A KeyboardInterrupt delivered inside the progress callback: the
        # journal keeps every cell that completed before the interrupt
        # (append happens before the callback), and resume finishes the rest.
        path = tmp_path / "sweep.ckpt"
        full = campaign(GRID, jobs=1)
        seen = []

        def interrupter(record):
            seen.append(record)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign(GRID, jobs=1, checkpoint=path, progress=interrupter)
        with Checkpoint.open(path, GRID, resume=True) as journal:
            assert len(journal.records) == 2
        resumed = campaign(GRID, jobs=1, checkpoint=path, resume=True)
        assert resumed.resumed_cells == 2
        _assert_identical(resumed, full)

    def test_crashed_cell_is_journaled_and_not_rerun(self, tmp_path):
        # A worker exception becomes a failed record; resume replays the
        # failure verbatim instead of re-running the cell.
        grid = SweepGrid(scenarios=("abd_crash_minority",), seeds=(0, 1),
                         params=(("value_size", (-1,)),))
        path = tmp_path / "sweep.ckpt"
        first = campaign(grid, jobs=1, checkpoint=path, max_cells=1)
        assert first.failed == 1
        resumed = campaign(grid, jobs=1, checkpoint=path, resume=True)
        assert resumed.complete and resumed.failed == 2
        assert resumed.resumed_cells == 1
        assert resumed.records[0].failure == first.records[0].failure

    def test_resume_over_partial_write_matches_uninterrupted(self, tmp_path):
        # End-to-end hard-kill shape: campaign dies mid-journal-write at
        # ~50%, is resumed (re-running the partial cell), and resumed once
        # more -- both merges equal the uninterrupted run.
        path = tmp_path / "sweep.ckpt"
        full = campaign(GRID, jobs=1)
        campaign(GRID, jobs=1, checkpoint=path, max_cells=2)
        with path.open("a") as file:
            file.write('{"kind": "record", "record": {"scena')
        resumed = campaign(GRID, jobs=1, checkpoint=path, resume=True)
        assert resumed.resumed_cells == 2
        _assert_identical(resumed, full)
        again = campaign(GRID, jobs=1, checkpoint=path, resume=True)
        assert again.resumed_cells == len(full.records)
        _assert_identical(again, full)

    def test_resume_with_nothing_left_just_replays(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        full = campaign(GRID, jobs=1, checkpoint=path)
        again = campaign(GRID, jobs=2, checkpoint=path, resume=True)
        assert again.resumed_cells == len(full.records)
        _assert_identical(again, full)

    def test_pooled_and_streaming_checkpoint_round_trip(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        full = campaign(GRID, jobs=1, streaming=True)
        half = campaign(GRID, jobs=2, streaming=True, checkpoint=path,
                        max_cells=2)
        assert not half.complete
        resumed = campaign(GRID, jobs=2, streaming=True, checkpoint=path,
                           resume=True)
        _assert_identical(resumed, full)
