"""Unit tests for values and process/configuration identifiers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.ids import (
    ConfigId,
    ProcessId,
    Role,
    config_id,
    parse_any_id,
    reader_id,
    reconfigurer_id,
    server_id,
    writer_id,
)
from repro.common.values import BOTTOM_VALUE, Value


class TestValue:
    def test_size_matches_payload(self):
        value = Value(payload=b"abcde", label="x")
        assert value.size == 5

    def test_of_size(self):
        value = Value.of_size(1024, label="big")
        assert value.size == 1024
        assert value.label == "big"

    def test_of_size_rejects_negative(self):
        with pytest.raises(ValueError):
            Value.of_size(-1)

    def test_text_round_trip(self):
        value = Value.from_text("hello world")
        assert value.as_text() == "hello world"
        assert value.label == "hello world"

    def test_bottom_value(self):
        assert BOTTOM_VALUE.size == 0
        assert BOTTOM_VALUE.label == "v0"

    @given(st.integers(0, 4096))
    def test_of_size_always_exact(self, size):
        assert Value.of_size(size).size == size


class TestPayloadInterning:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        from repro.common.values import payload_cache_clear

        payload_cache_clear()
        yield
        payload_cache_clear()

    def test_same_size_shares_payload_object(self):
        assert Value.of_size(1024).payload is Value.of_size(1024).payload
        assert Value.of_size(1024, label="a").payload is \
            Value.of_size(1024, label="b").payload

    def test_distinct_fill_not_shared(self):
        assert Value.of_size(16, fill=0x00).payload != Value.of_size(16).payload

    def test_fill_is_normalised_mod_256(self):
        assert Value.of_size(8, fill=0x1AB).payload is \
            Value.of_size(8, fill=0xAB).payload

    def test_storm_allocates_per_distinct_size_not_per_op(self):
        """A 150-op storm must allocate O(distinct sizes) payload buffers."""
        sizes = [256, 1024, 65536]
        values = [Value.of_size(sizes[i % len(sizes)], label=f"w{i}")
                  for i in range(150)]
        distinct_buffers = {id(value.payload) for value in values}
        assert len(distinct_buffers) == len(sizes)
        # Labels stay per-operation even though payload bytes are shared.
        assert len({value.label for value in values}) == 150

    def test_cache_is_bounded(self):
        from repro.common.values import payload_cache_info

        maxsize = payload_cache_info()["maxsize"]
        for size in range(2 * maxsize):
            Value.of_size(size)
        info = payload_cache_info()
        assert info["size"] == info["maxsize"] == maxsize
        assert info["misses"] == 2 * maxsize

    def test_lru_keeps_hot_sizes(self):
        from repro.common.values import payload_cache_info

        maxsize = payload_cache_info()["maxsize"]
        hot = Value.of_size(12345).payload
        for size in range(maxsize - 1):
            Value.of_size(size)
            Value.of_size(12345)  # keep the hot entry fresh
        assert Value.of_size(12345).payload is hot


class TestProcessIds:
    def test_roles(self):
        assert writer_id(0).role is Role.WRITER
        assert reader_id(1).role is Role.READER
        assert reconfigurer_id(2).role is Role.RECONFIGURER
        assert server_id(3).role is Role.SERVER

    def test_is_client(self):
        assert Role.WRITER.is_client()
        assert Role.READER.is_client()
        assert Role.RECONFIGURER.is_client()
        assert not Role.SERVER.is_client()

    def test_equality_and_hash(self):
        assert writer_id(1) == writer_id(1)
        assert writer_id(1) != writer_id(2)
        assert writer_id(1) != server_id(1)
        assert len({writer_id(1), writer_id(1), writer_id(2)}) == 2

    def test_total_order_is_deterministic(self):
        ids = [writer_id(3), writer_id(1), server_id(0), reader_id(2)]
        ordered = sorted(ids)
        assert ordered == sorted(ids)  # stable under repetition
        assert writer_id(1) < writer_id(2)

    def test_name(self):
        assert writer_id(4).name == "writer-4"
        assert server_id(0).name == "server-0"


class TestConfigIds:
    def test_config_id_factory(self):
        assert config_id(3) == ConfigId("c3")
        assert str(config_id(3)) == "c3"

    def test_ordering(self):
        assert ConfigId("a") < ConfigId("b")


class TestParseAnyId:
    def test_round_trip_process(self):
        assert parse_any_id("writer-3") == writer_id(3)
        assert parse_any_id("server-0") == server_id(0)

    def test_round_trip_config(self):
        assert parse_any_id("c2") == config_id(2)

    def test_identity(self):
        pid = reader_id(1)
        assert parse_any_id(pid) is pid

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_any_id("not-an-id")
        with pytest.raises(ValueError):
            parse_any_id(42)
