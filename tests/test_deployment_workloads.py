"""Tests for the deployment builder, workload generators and canned scenarios."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import server_id
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.spec.linearizability import check_linearizability
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec
from repro.workloads.scenarios import (
    mixed_scenario,
    read_heavy_scenario,
    reconfiguration_storm,
    write_heavy_scenario,
)


class TestDeploymentBuilder:
    def test_default_spec(self):
        dep = AresDeployment()
        assert len(dep.servers) == 5
        assert len(dep.writers) == 2
        assert len(dep.readers) == 2
        assert len(dep.reconfigurers) == 1

    def test_keyword_overrides(self):
        dep = AresDeployment(num_servers=7, num_writers=1, initial_dap="abd")
        assert len(dep.servers) == 7
        assert dep.initial_configuration.dap.value == "abd"

    def test_spec_and_overrides_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            AresDeployment(DeploymentSpec(), num_servers=3)

    def test_add_servers_extends_pool(self):
        dep = AresDeployment(num_servers=4)
        added = dep.add_servers(3)
        assert len(added) == 3
        assert len(dep.servers) == 7
        assert added[0] == server_id(4)

    def test_make_configuration_with_existing_servers(self):
        dep = AresDeployment(num_servers=6)
        cfg = dep.make_configuration(dap="treas", servers=[server_id(i) for i in range(4)], k=3)
        assert cfg.n == 4 and cfg.k == 3

    def test_make_configuration_defaults_to_initial_servers(self):
        dep = AresDeployment(num_servers=5)
        cfg = dep.make_configuration(dap="abd")
        assert set(cfg.servers) == set(dep.initial_configuration.servers)

    def test_make_configuration_ldr(self):
        dep = AresDeployment(num_servers=5)
        cfg = dep.make_configuration(dap="ldr", fresh_servers=6)
        assert cfg.dap.value == "ldr"
        assert len(cfg.ldr_directories) == 3 and len(cfg.ldr_replicas) == 3

    def test_unknown_dap_rejected(self):
        dep = AresDeployment(num_servers=5)
        with pytest.raises(ConfigurationError):
            dep.make_configuration(dap="paxos-kv")

    def test_unique_config_ids(self):
        dep = AresDeployment(num_servers=5)
        a = dep.make_configuration(dap="abd")
        b = dep.make_configuration(dap="abd")
        assert a.cfg_id != b.cfg_id

    def test_storage_accounting_spans_configurations(self):
        dep = AresDeployment(num_servers=5, initial_dap="treas", delta=2)
        dep.write(Value.of_size(200, label="x"), 0)
        before = dep.total_storage_data_bytes()
        cfg = dep.make_configuration(dap="abd", fresh_servers=3)
        dep.reconfig(cfg, 0)
        after = dep.total_storage_data_bytes()
        assert after > before
        per_config = dep.storage_by_configuration()
        assert set(per_config) >= {dep.initial_configuration.cfg_id, cfg.cfg_id}


class TestWorkloadDriver:
    def test_driver_runs_all_sessions(self):
        dep = AresDeployment(num_servers=5, num_writers=2, num_readers=2, delta=6, seed=1)
        spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=2, value_size=64)
        result = ClosedLoopDriver(dep, spec).run()
        assert result.errors == []
        assert result.total_operations == 2 * 3 + 2 * 2
        assert result.mean_write_latency > 0
        assert result.mean_read_latency > 0
        assert result.throughput > 0

    def test_driver_with_think_time(self):
        dep = AresDeployment(num_servers=5, num_writers=1, num_readers=1, delta=4, seed=2)
        spec = WorkloadSpec(operations_per_writer=2, operations_per_reader=2,
                            value_size=32, think_time=5.0)
        result = ClosedLoopDriver(dep, spec).run()
        assert result.errors == []
        assert result.duration > 0

    def test_workload_history_is_linearizable(self):
        dep = AresDeployment(num_servers=6, num_writers=3, num_readers=3, delta=8, seed=3)
        spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=3, value_size=48)
        result = ClosedLoopDriver(dep, spec).run()
        assert result.errors == []
        assert check_linearizability(dep.history).ok

    def test_empty_workload(self):
        dep = AresDeployment(num_servers=5, num_writers=1, num_readers=1)
        spec = WorkloadSpec(operations_per_writer=0, operations_per_reader=0)
        result = ClosedLoopDriver(dep, spec).run()
        assert result.total_operations == 0
        assert result.throughput == 0.0


class TestScenarios:
    def test_read_heavy(self):
        dep, result = read_heavy_scenario(value_size=256, num_readers=3, seed=1)
        assert result.errors == []
        assert len(result.read_latencies) > len(result.write_latencies)
        assert check_linearizability(dep.history).ok

    def test_write_heavy(self):
        dep, result = write_heavy_scenario(value_size=256, num_writers=3, seed=1)
        assert result.errors == []
        assert len(result.write_latencies) > len(result.read_latencies)
        assert check_linearizability(dep.history).ok

    def test_mixed(self):
        dep, result = mixed_scenario(value_size=128, clients_per_role=2, seed=1)
        assert result.errors == []
        assert result.total_operations == 2 * 4 + 2 * 4
        assert check_linearizability(dep.history).ok

    @pytest.mark.parametrize("direct", [False, True])
    def test_reconfiguration_storm(self, direct):
        dep, result = reconfiguration_storm(num_reconfigs=2, value_size=128,
                                            direct_state_transfer=direct, seed=2)
        assert result.errors == []
        assert len(dep.history.reconfigs()) == 2
        assert check_linearizability(dep.history).ok
