"""Tests for ARES read/write clients (Algorithm 7) and client-visible liveness."""

from __future__ import annotations

import pytest

from repro.common.ids import server_id
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.spec.history import OperationType
from repro.spec.linearizability import check_linearizability, check_tag_monotonicity
from repro.spec.properties import check_dap_properties


def make_deployment(**overrides):
    defaults = dict(num_servers=6, initial_dap="treas", delta=6, num_writers=3,
                    num_readers=3, num_reconfigurers=2, seed=0,
                    latency=UniformLatency(1.0, 2.0), record_dap=True)
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestBasicOperations:
    def test_write_then_read(self):
        dep = make_deployment()
        dep.write(Value.of_size(100, label="hello"), 0)
        assert dep.read(0).label == "hello"

    def test_read_before_any_write_returns_initial(self):
        dep = make_deployment()
        assert dep.read(0).label == "v0"

    def test_writes_from_different_writers_are_ordered(self):
        dep = make_deployment()
        tag_a = dep.write(Value.of_size(10, label="a"), 0)
        tag_b = dep.write(Value.of_size(10, label="b"), 1)
        tag_c = dep.write(Value.of_size(10, label="c"), 2)
        assert tag_a < tag_b < tag_c
        assert dep.read(0).label == "c"

    def test_client_sequence_grows_only_via_read_config(self):
        dep = make_deployment()
        writer = dep.writers[0]
        assert writer.cseq.nu == 0
        cfg = dep.make_configuration(dap="treas", fresh_servers=5, k=4)
        dep.reconfig(cfg, 0)
        # The writer has not operated yet, so its local view is still short.
        assert writer.cseq.nu == 0
        dep.write(Value.of_size(10, label="x"), 0)
        assert writer.cseq.nu == 1

    def test_abd_backed_ares(self):
        dep = make_deployment(initial_dap="abd")
        dep.write(Value.of_size(50, label="a"), 0)
        assert dep.read(0).label == "a"

    def test_initial_configuration_subset_of_pool(self):
        dep = make_deployment(num_servers=8, initial_config_size=5)
        assert dep.initial_configuration.n == 5
        dep.write(Value.of_size(10, label="x"), 0)
        assert dep.read(0).label == "x"


class TestAtomicityUnderConcurrency:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_concurrent_reads_and_writes(self, seed):
        dep = make_deployment(seed=seed)
        ops = []
        for round_number in range(2):
            for index in range(3):
                ops.append(dep.spawn_write(dep.writers[index].next_value(48), index))
                ops.append(dep.spawn_read(index))
        dep.run()
        assert all(op.exception() is None for op in ops)
        result = check_linearizability(dep.history)
        assert result.ok, result.reason
        assert check_tag_monotonicity(dep.history) is None
        assert check_dap_properties(dep.dap_recorder) == []

    @pytest.mark.parametrize("seed", [0, 1])
    def test_atomicity_with_reconfigurations_in_flight(self, seed):
        dep = make_deployment(seed=seed, delta=10)
        ops = []
        for index in range(3):
            ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
            ops.append(dep.spawn_read(index))
        cfg_a = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        ops.append(dep.spawn_reconfig(cfg_a, 0))
        cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
        ops.append(dep.spawn_reconfig(cfg_b, 1))
        # Second wave of client operations, started a bit later.
        def delayed_ops():
            yield dep.writers[0].sleep(5.0)
            for index in range(3):
                ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
                ops.append(dep.spawn_read(index))
            return None

        dep.writers[0].spawn(delayed_ops())
        dep.run()
        assert all(op.exception() is None for op in ops)
        result = check_linearizability(dep.history)
        assert result.ok, result.reason


class TestLivenessUnderFailures:
    def test_operations_survive_f_crashes_in_current_configuration(self):
        dep = make_deployment(num_servers=9, k=5)  # f = 2
        dep.failure_injector.crash_now(server_id(7))
        dep.failure_injector.crash_now(server_id(8))
        dep.write(Value.of_size(64, label="x"), 0)
        assert dep.read(0).label == "x"

    def test_reconfiguration_away_from_failing_servers(self):
        # The motivating use-case: servers of the old configuration start
        # failing, a reconfiguration moves the data to healthy servers, and
        # the service keeps operating after the old configuration dies.
        dep = make_deployment(num_servers=6)
        dep.write(Value.of_size(128, label="precious"), 0)
        dep.failure_injector.crash_now(server_id(5))  # within tolerance
        fresh = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(fresh, 0)
        # Clients learn the new configuration while the old one is still up
        # (operations after finalization pin their traversal to the new
        # configuration, so the old servers are no longer needed afterwards).
        assert dep.read(0).label == "precious"
        dep.write(Value.of_size(128, label="after-migration"), 0)
        reader = dep.readers[0]
        writer = dep.writers[0]
        assert reader.cseq.mu >= 1 and writer.cseq.mu >= 1
        # Now the remaining old servers die too; clients that already migrated
        # keep operating against the new configuration alone.
        for index in range(5):
            dep.failure_injector.crash_now(server_id(index))
        dep.write(Value.of_size(128, label="after-death-of-c0"), 0)
        assert dep.read(0).label == "after-death-of-c0"

    def test_reader_crash_mid_operation_aborts_cleanly(self):
        dep = make_deployment(seed=3)
        handle = dep.spawn_read(0)
        dep.sim.run_until(1.0)
        dep.readers[0].crash()
        dep.sim.run()
        assert handle.exception() is not None
        # The rest of the system is unaffected.
        dep.write(Value.of_size(16, label="x"), 0)
        assert dep.read(1).label == "x"


class TestHistoryAndLatencies:
    def test_latencies_are_positive_and_bounded_by_lemma59(self):
        from repro.analysis.latency import rw_operation_upper_bound

        dep = make_deployment()
        dep.write(Value.of_size(64, label="x"), 0)
        dep.read(0)
        D = dep.latency_model.D
        bound = rw_operation_upper_bound(D, mu_start=0, nu_end=0)
        for latency in dep.history.latencies():
            assert 0 < latency <= bound

    def test_operation_counts(self):
        dep = make_deployment()
        dep.write(Value.of_size(16, label="a"), 0)
        dep.read(0)
        dep.read(1)
        assert len(dep.history.writes()) == 1
        assert len(dep.history.reads()) == 2
        assert len(dep.history.operations(OperationType.RECONFIG)) == 0
