"""Unit tests for tags and tag-value pairs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.ids import writer_id
from repro.common.tags import BOTTOM_TAG, Tag, TagValue, max_tag, max_tag_value
from repro.common.values import Value


def tag(z: int, w: int | None = None) -> Tag:
    return Tag(z=z, writer=None if w is None else writer_id(w))


class TestTagOrdering:
    def test_bottom_tag_is_smallest(self):
        assert BOTTOM_TAG < tag(0, 0)
        assert BOTTOM_TAG < tag(1, 0)
        assert not tag(0, 0) < BOTTOM_TAG

    def test_integer_part_dominates(self):
        assert tag(1, 5) < tag(2, 0)
        assert tag(2, 0) > tag(1, 5)

    def test_writer_breaks_ties(self):
        assert tag(3, 0) < tag(3, 1)
        assert tag(3, 1) > tag(3, 0)

    def test_equal_tags(self):
        assert tag(3, 1) == tag(3, 1)
        assert tag(3, 1) <= tag(3, 1)
        assert tag(3, 1) >= tag(3, 1)

    def test_is_initial(self):
        assert BOTTOM_TAG.is_initial()
        assert not tag(1, 0).is_initial()

    @given(st.integers(0, 100), st.integers(0, 5), st.integers(0, 100), st.integers(0, 5))
    def test_order_is_total_and_antisymmetric(self, z1, w1, z2, w2):
        a, b = tag(z1, w1), tag(z2, w2)
        assert (a < b) or (b < a) or (a == b)
        if a < b:
            assert not b < a

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 4)), min_size=1, max_size=20))
    def test_max_tag_is_maximum(self, pairs):
        tags = [tag(z, w) for z, w in pairs]
        maximum = max_tag(tags)
        assert all(maximum >= t for t in tags)
        assert maximum in tags


class TestTagIncrement:
    def test_increment_bumps_integer(self):
        w = writer_id(2)
        incremented = tag(4, 0).increment(w)
        assert incremented.z == 5
        assert incremented.writer == w

    def test_increment_is_strictly_larger(self):
        base = tag(7, 3)
        assert base.increment(writer_id(0)) > base
        assert BOTTOM_TAG.increment(writer_id(0)) > BOTTOM_TAG

    def test_concurrent_increments_are_distinct(self):
        base = tag(1, 0)
        a = base.increment(writer_id(1))
        b = base.increment(writer_id(2))
        assert a != b
        assert (a < b) or (b < a)


class TestMaxHelpers:
    def test_max_tag_empty_defaults_to_bottom(self):
        assert max_tag([]) == BOTTOM_TAG

    def test_max_tag_empty_with_default(self):
        default = tag(9, 1)
        assert max_tag([], default=default) == default

    def test_max_tag_value(self):
        pairs = [
            TagValue(tag(1, 0), Value.from_text("a")),
            TagValue(tag(3, 0), Value.from_text("b")),
            TagValue(tag(2, 0), Value.from_text("c")),
        ]
        assert max_tag_value(pairs).value.as_text() == "b"

    def test_max_tag_value_empty(self):
        assert max_tag_value([]) is None
        sentinel = TagValue(BOTTOM_TAG, Value.from_text("x"))
        assert max_tag_value([], default=sentinel) is sentinel


class TestTagValue:
    def test_ordering_follows_tags(self):
        low = TagValue(tag(1, 0), Value.from_text("low"))
        high = TagValue(tag(2, 0), Value.from_text("high"))
        assert low < high
        assert high > low
        assert low <= high and high >= low

    def test_frozen(self):
        pair = TagValue(tag(1, 0), Value.from_text("x"))
        with pytest.raises(AttributeError):
            pair.tag = tag(2, 0)  # type: ignore[misc]
