"""Differential tests: streaming verification against the batch checkers.

The streaming stack (``repro.spec.streaming``) must be *equivalent* to the
batch path everywhere it claims a verdict: same pass/fail decision, same
failure classification, and byte-identical signature hashes.  Histories it
cannot decide online must raise :class:`StreamingAmbiguityError` -- never
silently pass.  These tests drive both modes over the scenario registry and
over hand-doctored adversarial histories.
"""

import hashlib
import json
import pathlib

import pytest

from repro.common.errors import (StreamingAmbiguityError, StreamingHistoryError,
                                 StreamingWindowError)
from repro.common.ids import reader_id, writer_id
from repro.common.tags import Tag
from repro.spec import (History, OperationType, SignatureAccumulator,
                        StreamingStats, check_linearizability)
from repro.workloads.scenarios import SCENARIOS, run_scenario

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "golden_signatures.json")
    .read_text())

W0, W1, R0 = writer_id(0), writer_id(1), reader_id(0)
READ, WRITE = OperationType.READ, OperationType.WRITE


def _dual(build):
    """Record the same event script into a batch and a streaming history."""
    batch = History()
    build(batch)
    streaming = History()
    streaming.enable_streaming()
    build(streaming)
    streaming.stream.finalize()
    return batch, streaming


# ======================================================================
# Scenario-registry differential
# ======================================================================

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_streaming_scenario_matches_golden(name):
    """Every registered scenario verifies online and reproduces its golden
    batch signature byte-for-byte."""
    assert name in GOLDEN, f"no golden hash for {name}"
    result = run_scenario(name, seed=0, streaming=True)
    failure, method = result.check()
    assert failure is None, failure
    assert method in ("streaming", "per-key(streaming)")
    assert result.signature_hash() == GOLDEN[name]
    stream = result.history.stream
    assert stream.folded_records == stream.total_records
    # The whole point: the open window stays tiny (registry scenarios peak
    # at 4-17 unfolded records regardless of length).
    assert stream.open_window_peak <= 64


@pytest.mark.parametrize("name,seed", [
    ("abd_crash_minority", 1),
    ("abd_crash_minority", 2),
    ("store_mixed_dap_storm", 1),
    ("store_mixed_dap_storm", 2),
])
def test_streaming_matches_batch_on_extra_seeds(name, seed):
    streaming = run_scenario(name, seed=seed, streaming=True)
    s_failure, _ = streaming.check()
    batch = run_scenario(name, seed=seed)
    b_failure, _ = batch.check()
    assert s_failure == b_failure
    assert streaming.signature_hash() == batch.signature_hash()


# ======================================================================
# Adversarial doctored histories
# ======================================================================

def test_new_old_inversion_fails_both_modes():
    def build(h):
        wa = h.invoke(W0, WRITE, 0.0, value_label="A")
        h.respond(wa, 5.0, tag=Tag(1, W0))
        wb = h.invoke(W0, WRITE, 6.0, value_label="B")
        h.respond(wb, 10.0, tag=Tag(2, W0))
        r1 = h.invoke(R0, READ, 11.0)
        h.respond(r1, 12.0, value_label="B", tag=Tag(2, W0))
        r2 = h.invoke(R0, READ, 13.0)
        h.respond(r2, 14.0, value_label="A", tag=Tag(1, W0))

    batch, streaming = _dual(build)
    assert not check_linearizability(batch).ok
    # Streaming may classify the stale read either as a cluster inversion or
    # as a read of an already-retired value; both are proven violations.
    failure = streaming.stream.linearizability_failure()
    assert failure is not None
    assert "inversion" in failure or "stale" in failure


def test_read_of_unwritten_label_fails_both_modes():
    def build(h):
        r = h.invoke(R0, READ, 0.0)
        h.respond(r, 1.0, value_label="ghost")

    batch, streaming = _dual(build)
    assert not check_linearizability(batch).ok
    failure = streaming.stream.linearizability_failure()
    assert failure is not None and "ghost" in failure


def test_reads_of_failed_write_fail_both_modes():
    def build(h):
        w = h.invoke(W0, WRITE, 0.0, value_label="A")
        r = h.invoke(R0, READ, 1.0)
        h.respond(r, 2.0, value_label="A")
        h.fail(w, 5.0)

    batch, streaming = _dual(build)
    assert not check_linearizability(batch).ok
    assert streaming.stream.linearizability_failure() is not None


def test_failed_write_without_readers_is_fine_in_both_modes():
    def build(h):
        wa = h.invoke(W0, WRITE, 0.0, value_label="A")
        h.respond(wa, 5.0, tag=Tag(1, W0))
        wb = h.invoke(W1, WRITE, 6.0, value_label="B")
        h.fail(wb, 8.0)  # mid-stream client crash, nobody read B
        r = h.invoke(R0, READ, 9.0)
        h.respond(r, 10.0, value_label="A", tag=Tag(1, W0))

    batch, streaming = _dual(build)
    assert check_linearizability(batch).ok
    assert streaming.stream.linearizability_failure() is None
    assert streaming.stream.tag_failure() is None
    assert streaming.stream.failed_operations == 1


def test_initial_read_after_completed_write_fails_both_modes():
    def build(h):
        w = h.invoke(W0, WRITE, 0.0, value_label="A")
        h.respond(w, 5.0, tag=Tag(1, W0))
        r = h.invoke(R0, READ, 6.0)
        h.respond(r, 7.0, value_label="v0")

    batch, streaming = _dual(build)
    assert not check_linearizability(batch).ok
    failure = streaming.stream.linearizability_failure()
    assert failure is not None and "initial value" in failure


def test_duplicate_label_raises_ambiguity():
    """Duplicate labels need the Wing-Gong reference search, which streaming
    cannot run (the records are gone): explicit ambiguity, never a pass."""
    def build(h):
        w1 = h.invoke(W0, WRITE, 0.0, value_label="A")
        h.respond(w1, 1.0)
        w2 = h.invoke(W1, WRITE, 2.0, value_label="A")
        h.respond(w2, 3.0)

    _, streaming = _dual(build)
    with pytest.raises(StreamingAmbiguityError):
        streaming.stream.linearizability_failure()


def test_no_greedy_witness_raises_ambiguity():
    """min_res order fails, no tags for the second candidate: the batch
    reference search decides it (linearizable: B, A, C), streaming must
    raise ambiguity instead of guessing.  The slow unread write C pins the
    fold frontier so A's late read lands inside A's unfolded segment."""
    def build(h):
        wa = h.invoke(W0, WRITE, 0.0, value_label="A")
        wc = h.invoke(W0, WRITE, 5.0, value_label="C")
        wb = h.invoke(W1, WRITE, 10.0, value_label="B")
        h.respond(wa, 15.0)
        h.respond(wb, 40.0)
        r = h.invoke(R0, READ, 60.0)
        h.respond(r, 70.0, value_label="A")
        h.respond(wc, 100.0)

    batch, streaming = _dual(build)
    assert check_linearizability(batch).ok  # the reference search finds B, A, C
    with pytest.raises(StreamingAmbiguityError):
        streaming.stream.linearizability_failure()


def test_tag_order_witness_decides_when_min_res_order_fails():
    """Same shape as above but with protocol tags: the tag-order candidate
    (batch candidate 2) must rescue the verdict online too."""
    def build(h):
        wa = h.invoke(W0, WRITE, 0.0, value_label="A")
        wb = h.invoke(W1, WRITE, 10.0, value_label="B")
        h.respond(wa, 15.0, tag=Tag(2, W0))
        h.respond(wb, 40.0, tag=Tag(1, W1))
        r = h.invoke(R0, READ, 60.0)
        h.respond(r, 70.0, value_label="A", tag=Tag(2, W0))

    batch, streaming = _dual(build)
    assert check_linearizability(batch).ok
    assert streaming.stream.linearizability_failure() is None


# ======================================================================
# Window bound and API guards
# ======================================================================

def test_window_limit_raises():
    h = History()
    h.enable_streaming(window_limit=4)
    h.invoke(W0, WRITE, 0.0, value_label="stuck")  # never responds
    for i in range(3):
        r = h.invoke(R0, READ, 1.0 + i)
        h.respond(r, 1.5 + i, value_label="v0")
    with pytest.raises(StreamingWindowError):
        h.invoke(R0, READ, 10.0)


def test_enable_streaming_requires_empty_history():
    h = History()
    h.invoke(W0, WRITE, 0.0, value_label="A")
    with pytest.raises(StreamingHistoryError):
        h.enable_streaming()
    h2 = History()
    h2.enable_streaming()
    with pytest.raises(StreamingHistoryError):
        h2.enable_streaming()


def test_batch_queries_raise_in_streaming_mode():
    h = History()
    h.enable_streaming()
    w = h.invoke(W0, WRITE, 0.0, value_label="A", key="k0")
    h.respond(w, 1.0, tag=Tag(1, W0))
    for api in (h.operations, h.signature, h.describe, h.keys,
                h.split_by_key, lambda: h.for_key("k0"), lambda: list(h)):
        with pytest.raises(StreamingHistoryError):
            api()
    # The supported surface keeps working.
    assert len(h) == 1
    assert h.is_keyed()
    assert h.signature_hash()


def test_out_of_order_events_raise():
    h = History()
    h.enable_streaming()
    h.invoke(W0, WRITE, 5.0, value_label="A")
    with pytest.raises(StreamingHistoryError):
        h.invoke(W1, WRITE, 3.0, value_label="B")


def test_finalized_stream_rejects_records():
    h = History()
    stream = h.enable_streaming()
    w = h.invoke(W0, WRITE, 0.0, value_label="A")
    h.respond(w, 1.0)
    stream.finalize()
    with pytest.raises(StreamingHistoryError):
        h.invoke(W0, WRITE, 2.0, value_label="B")


# ======================================================================
# Signature accumulator
# ======================================================================

@pytest.mark.parametrize("ops", [0, 1, 2, 5])
def test_signature_hash_matches_batch_bytes(ops):
    """Tuple-repr closing differs at 0/1/n entries; the accumulator must
    reproduce every case."""
    def build(h):
        for i in range(ops):
            w = h.invoke(W0, WRITE, float(i), value_label=f"A{i}", key="k0")
            h.respond(w, i + 0.5, tag=Tag(i + 1, W0))

    batch, streaming = _dual(build)
    assert streaming.signature_hash() == batch.signature_hash()


def test_result_digest_matches_batch_bytes():
    entries = ((1, "writer-0", "write", 0.0, 1.0, "A", None, False),
               (2, "reader-0", "read", 2.0, 3.0, "A", None, False))
    chaos_log = [(12.0, "crash s2"), (20.0, "heal s2")]
    acc = SignatureAccumulator()
    for entry in entries:
        acc.fold(entry)
    expected_history = hashlib.sha256(repr(entries).encode()).hexdigest()
    expected_result = hashlib.sha256(
        repr((entries, tuple(chaos_log))).encode()).hexdigest()
    assert acc.history_digest() == expected_history
    assert acc.result_digest(chaos_log) == expected_result
    # Digest reads must not consume the accumulator.
    assert acc.history_digest() == expected_history


# ======================================================================
# Streaming statistics
# ======================================================================

def test_streaming_stats_exact_moments_and_bounded_sample():
    values = [((i * 2654435761) % 997) / 10.0 for i in range(10_000)]
    stats = StreamingStats(capacity=128, seed=7)
    for v in values:
        stats.add(v)
    assert stats.count == len(values)
    assert stats.max == max(values)
    assert stats.mean == pytest.approx(sum(values) / len(values))
    sample = stats.sample()
    assert len(sample) == 128
    # Deterministic for a fixed arrival sequence and seed.
    again = StreamingStats(capacity=128, seed=7)
    for v in values:
        again.add(v)
    assert again.sample() == sample


# ======================================================================
# Sweep-engine cross-mode gate
# ======================================================================

def test_sweep_streaming_cell_matches_batch_cell():
    from repro.sweep.engine import campaign
    from repro.sweep.grid import parse_grid

    grid = parse_grid("scenarios=abd_crash_minority;seeds=0")
    pooled = campaign(grid, jobs=1, streaming=True)
    serial = campaign(grid, jobs=1)
    assert pooled.ok and serial.ok
    assert pooled.signature_map() == serial.signature_map()
    record = pooled.records[0]
    assert record.checker_method in ("streaming", "per-key(streaming)")
