"""Unit tests for the ABD DAP (Algorithm 12)."""

from __future__ import annotations

import pytest

from repro.common.ids import config_id, server_id, writer_id
from repro.common.tags import BOTTOM_TAG, Tag, TagValue
from repro.common.values import BOTTOM_VALUE, Value
from repro.config.configuration import Configuration
from repro.dap.abd import AbdServerState, QUERY_DATA, QUERY_TAG, WRITE
from repro.net.message import request
from repro.registers.static import StaticRegisterDeployment
from repro.spec.properties import check_dap_properties


class TestAbdServerState:
    def _state(self, n=3):
        servers = [server_id(i) for i in range(n)]
        cfg = Configuration.abd(config_id(0), servers)
        return AbdServerState(cfg, servers[0])

    def test_initial_state(self):
        state = self._state()
        assert state.tag == BOTTOM_TAG
        assert state.value == BOTTOM_VALUE
        assert state.storage_data_bytes() == 0

    def test_write_with_higher_tag_overwrites(self):
        state = self._state()
        tag = Tag(1, writer_id(0))
        value = Value.of_size(10, label="x")
        state.handle(writer_id(0), request(WRITE, 1, tag=tag, value=value))
        assert state.tag == tag
        assert state.value == value
        assert state.storage_data_bytes() == 10

    def test_write_with_lower_tag_ignored(self):
        state = self._state()
        high = Tag(5, writer_id(0))
        low = Tag(2, writer_id(1))
        state.handle(writer_id(0), request(WRITE, 1, tag=high, value=Value.of_size(10, label="hi")))
        state.handle(writer_id(1), request(WRITE, 2, tag=low, value=Value.of_size(20, label="lo")))
        assert state.tag == high
        assert state.value.label == "hi"

    def test_query_tag_reply(self):
        state = self._state()
        response = state.handle(writer_id(0), request(QUERY_TAG, 1))
        assert response["tag"] == BOTTOM_TAG
        assert response.in_reply_to == 1

    def test_query_data_reply_carries_value_bytes(self):
        state = self._state()
        tag = Tag(1, writer_id(0))
        state.handle(writer_id(0), request(WRITE, 1, tag=tag, value=Value.of_size(64, label="x")))
        response = state.handle(writer_id(0), request(QUERY_DATA, 2))
        assert response["tag"] == tag
        assert response.data_bytes == 64

    def test_unknown_kind_ignored(self):
        state = self._state()
        assert state.handle(writer_id(0), request("SOMETHING-ELSE", 1)) is None


class TestAbdPrimitives:
    def _deployment(self, **kwargs):
        kwargs.setdefault("record_dap", True)
        kwargs.setdefault("num_writers", 2)
        kwargs.setdefault("num_readers", 2)
        return StaticRegisterDeployment.abd(num_servers=5, **kwargs)

    def test_get_tag_reflects_completed_put(self):
        dep = self._deployment()
        writer = dep.writers[0]
        pair = TagValue(Tag(3, writer.pid), Value.of_size(8, label="v"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        tag = dep.sim.run_until_complete(writer.spawn(writer.dap.get_tag()))
        assert tag >= pair.tag

    def test_get_data_returns_put_pair(self):
        dep = self._deployment()
        writer, reader = dep.writers[0], dep.readers[0]
        pair = TagValue(Tag(2, writer.pid), Value.of_size(32, label="payload"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        result = dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        assert result.tag == pair.tag
        assert result.value.label == "payload"

    def test_get_data_initially_returns_bottom(self):
        dep = self._deployment()
        reader = dep.readers[0]
        result = dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        assert result.tag == BOTTOM_TAG
        assert result.value.label == "v0"

    def test_put_data_survives_minority_crashes(self):
        dep = self._deployment()
        dep.servers[list(dep.servers)[0]].crash()
        dep.servers[list(dep.servers)[1]].crash()
        writer = dep.writers[0]
        pair = TagValue(Tag(1, writer.pid), Value.of_size(8, label="v"))
        dep.sim.run_until_complete(writer.spawn(writer.dap.put_data(pair)))
        reader = dep.readers[0]
        result = dep.sim.run_until_complete(reader.spawn(reader.dap.get_data()))
        assert result.value.label == "v"

    def test_dap_properties_hold_over_sequential_workload(self):
        dep = self._deployment()
        for round_number in range(3):
            dep.write(dep.writers[0].next_value(16), 0)
            dep.read(0)
            dep.write(dep.writers[1].next_value(16), 1)
            dep.read(1)
        assert check_dap_properties(dep.dap_recorder) == []
