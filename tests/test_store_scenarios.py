"""Store scenarios end-to-end: chaos registry and sweep-grid integration.

The generic chaos battery (``test_chaos_scenarios.py``) already runs every
registered scenario -- including the store ones -- under many seeds.  This
suite adds the store-specific assertions: per-key verification is what
``check()`` actually runs, hot-shard placement drives the crash schedule,
and the sweep engine accepts store scenarios (with keyspace parameter
axes) while preserving the serial/pooled signature guarantee.
"""

from __future__ import annotations

import pytest

from repro.store.deployment import StoreDeployment
from repro.sweep.engine import campaign, execute_run
from repro.sweep.grid import RunSpec, SweepGrid, parse_grid
from repro.workloads.scenarios import get_scenario, run_scenario

STORE_SCENARIOS = ("store_mixed_dap_storm", "store_hot_shard_crash",
                   "store_partition_across_shards")
#: PR-5 reconfiguration scenarios (covered in depth by test_store_reconfig.py);
#: store_migration_gc (covered by test_retirement.py) rides the same glob.
RECONFIG_SCENARIOS = ("store_shard_migration_storm", "store_dap_flip_under_chaos",
                      "store_rebalance_hot_range", "store_migration_gc")


class TestStoreScenarios:
    @pytest.mark.parametrize("name", STORE_SCENARIOS)
    def test_runs_are_seed_deterministic_and_verified(self, name):
        first = run_scenario(name, seed=3)
        first.verify()
        second = run_scenario(name, seed=3)
        assert first.signature() == second.signature()
        assert first.chaos_log == second.chaos_log
        assert first.signature() != run_scenario(name, seed=4).signature()

    @pytest.mark.parametrize("name", STORE_SCENARIOS)
    def test_deployments_are_stores_with_keyed_histories(self, name):
        result = run_scenario(name, seed=0)
        assert isinstance(result.deployment, StoreDeployment)
        assert result.history.is_keyed()
        failure, method = result.check()
        assert failure is None
        assert method == "per-key(fast)"

    def test_mixed_dap_storm_spans_dap_kinds(self):
        result = run_scenario("store_mixed_dap_storm", seed=0)
        kinds = [shard.dap for shard in result.deployment.shard_map.shards]
        assert sorted(kinds) == ["abd", "ldr", "treas"]

    def test_hot_shard_crash_targets_the_hot_keys_shard(self):
        result = run_scenario("store_hot_shard_crash", seed=0)
        deployment = result.deployment
        hot_servers = {pid.name for pid in deployment.shard_map.servers_for_key("k0")}
        crashed = {text for _, text in result.chaos_log if "crash" in text}
        assert crashed, "no crash fired"
        for entry in crashed:
            assert any(name in entry for name in hot_servers), (
                f"crash {entry!r} hit a server outside the hot shard")
        # Zipf skew: the hot key sees the most operations.
        per_key = {key: len(sub) for key, sub in
                   result.history.split_by_key().items()}
        assert per_key.get("k0", 0) == max(per_key.values())

    def test_partition_scenario_isolates_one_server_per_shard(self):
        result = run_scenario("store_partition_across_shards", seed=0)
        isolates = [text for _, text in result.chaos_log if "isolate" in text]
        assert isolates and any("s4" in t and "s10" in t for t in isolates)


class TestStoreSweepIntegration:
    def test_execute_run_records_per_key_checker(self):
        record = execute_run(RunSpec(scenario="store_mixed_dap_storm", seed=1))
        assert record.ok, record.failure
        assert record.checker_method == "per-key(fast)"
        assert record.history_ops > 0
        assert record.signature_hash

    def test_grid_overrides_keyspace_fields(self):
        record = execute_run(RunSpec(
            scenario="store_hot_shard_crash", seed=0,
            params=(("batch_size", 2), ("num_keys", 4))))
        assert record.ok, record.failure
        assert record.cell_id == "store_hot_shard_crash/s0[batch_size=2,num_keys=4]"

    def test_keyspace_override_on_register_scenario_fails_the_cell(self):
        record = execute_run(RunSpec(
            scenario="abd_crash_minority", seed=0, params=(("num_keys", 4),)))
        assert not record.ok
        assert "single-register" in record.failure

    def test_parse_grid_accepts_store_globs_and_keyspace_axes(self):
        grid = parse_grid("scenarios=store_*;seeds=0;num_keys=4,8")
        assert grid.scenarios == STORE_SCENARIOS + RECONFIG_SCENARIOS
        assert grid.params == (("num_keys", (4, 8)),)
        assert len(grid.expand()) == 14

    def test_serial_campaign_matches_cell_by_cell_execution(self):
        grid = SweepGrid(scenarios=("store_partition_across_shards",),
                         seeds=(0, 1))
        result = campaign(grid, jobs=1)
        assert result.ok
        assert [r.signature_hash for r in result.records] == [
            execute_run(spec).signature_hash for spec in grid.expand()]
