"""Randomised end-to-end atomicity tests.

Each test builds a deployment, drives a randomised concurrent mix of reads,
writes, reconfigurations and crash failures (all drawn from the seeded
simulator RNG so failures reproduce exactly), and then checks:

* every spawned operation either completed or failed only because its own
  client crashed;
* the recorded history is linearizable;
* tag monotonicity (Lemma 20) holds;
* the DAP consistency properties C1/C2 hold per configuration.

These are the library's strongest correctness tests: they exercise the full
stack (erasure coding, quorums, consensus, reconfiguration, state transfer)
under adversarial interleavings.
"""

from __future__ import annotations

import pytest

from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment
from repro.spec.linearizability import check_linearizability, check_tag_monotonicity
from repro.spec.properties import check_dap_properties


def assert_execution_correct(deployment, operations):
    failures = [op for op in operations if op.exception() is not None]
    assert not failures, f"operations failed: {[repr(op.exception()) for op in failures]}"
    result = check_linearizability(deployment.history)
    assert result.ok, f"not linearizable: {result.reason}\n{deployment.history.describe()}"
    monotonicity = check_tag_monotonicity(deployment.history)
    assert monotonicity is None, monotonicity
    if deployment.dap_recorder is not None:
        violations = check_dap_properties(deployment.dap_recorder)
        assert violations == [], [str(v) for v in violations]


@pytest.mark.parametrize("seed", range(6))
def test_static_treas_random_concurrency(seed):
    dep = StaticRegisterDeployment.treas(
        num_servers=7, k=5, delta=8, num_writers=3, num_readers=3,
        latency=UniformLatency(1.0, 6.0), seed=seed, record_dap=True)
    ops = []
    for round_number in range(3):
        for index in range(3):
            ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
            ops.append(dep.spawn_read(index))
    dep.run()
    assert_execution_correct(dep, ops)


@pytest.mark.parametrize("seed", range(6))
def test_static_abd_random_concurrency(seed):
    dep = StaticRegisterDeployment.abd(
        num_servers=5, num_writers=3, num_readers=3,
        latency=UniformLatency(1.0, 6.0), seed=seed, record_dap=True)
    ops = []
    for round_number in range(3):
        for index in range(3):
            ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
            ops.append(dep.spawn_read(index))
    dep.run()
    assert_execution_correct(dep, ops)


@pytest.mark.parametrize("seed", range(4))
def test_ares_with_concurrent_reconfigurations(seed):
    dep = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=12, num_writers=3, num_readers=3,
        num_reconfigurers=2, latency=UniformLatency(1.0, 4.0), seed=seed,
        record_dap=True))
    ops = []
    for index in range(3):
        ops.append(dep.spawn_write(dep.writers[index].next_value(96), index))
        ops.append(dep.spawn_read(index))
    cfg_a = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
    cfg_b = dep.make_configuration(dap="abd", fresh_servers=3)
    ops.append(dep.spawn_reconfig(cfg_a, 0))
    ops.append(dep.spawn_reconfig(cfg_b, 1))

    def second_wave():
        yield dep.writers[0].sleep(8.0)
        for index in range(3):
            ops.append(dep.spawn_write(dep.writers[index].next_value(96), index))
            ops.append(dep.spawn_read(index))
        return None

    dep.writers[0].spawn(second_wave())
    dep.run()
    assert_execution_correct(dep, ops)


@pytest.mark.parametrize("seed", range(4))
def test_ares_direct_transfer_with_concurrent_clients(seed):
    dep = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=12, num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 4.0), seed=seed,
        direct_state_transfer=True, record_dap=True))
    dep.write(Value.of_size(512, label="seed-value"), 0)
    ops = []
    for index in range(2):
        ops.append(dep.spawn_write(dep.writers[index].next_value(128), index))
        ops.append(dep.spawn_read(index))
    cfg = dep.make_configuration(dap="treas", fresh_servers=8, k=5)
    ops.append(dep.spawn_reconfig(cfg, 0))
    dep.run()
    assert_execution_correct(dep, ops)


@pytest.mark.parametrize("seed", range(3))
def test_ares_with_server_crashes_within_tolerance(seed):
    dep = AresDeployment(DeploymentSpec(
        num_servers=9, initial_dap="treas", k=5, delta=10, num_writers=2,
        num_readers=2, num_reconfigurers=1, latency=UniformLatency(1.0, 3.0),
        seed=seed, record_dap=True))
    # f = (9-5)/2 = 2: crash two random servers of the initial configuration
    # at a random time while operations are in flight.
    victims = dep.failure_injector.crash_random_servers(
        dep.initial_configuration.servers, 2, at=5.0)
    assert len(victims) == 2
    ops = []
    for round_number in range(2):
        for index in range(2):
            ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
            ops.append(dep.spawn_read(index))
    dep.run()
    assert_execution_correct(dep, ops)


@pytest.mark.parametrize("seed", range(3))
def test_mixed_dap_chain_remains_atomic(seed):
    """Remark 22: different DAPs in different configurations, one atomic object."""
    dep = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd", delta=8, num_writers=2, num_readers=2,
        num_reconfigurers=1, latency=UniformLatency(1.0, 3.0), seed=seed,
        record_dap=True))
    ops = []
    dep.write(Value.of_size(100, label="initial"), 0)
    chain = [("treas", 6), ("abd", 3), ("treas", 5)]
    for index, (dap, fresh) in enumerate(chain):
        cfg = dep.make_configuration(dap=dap, fresh_servers=fresh)
        ops.append(dep.spawn_reconfig(cfg, 0))
        ops.append(dep.spawn_write(dep.writers[index % 2].next_value(100), index % 2))
        ops.append(dep.spawn_read(index % 2))
        dep.run()
    assert_execution_correct(dep, ops)
    # The latest value is readable through the final configuration.
    final_value = dep.read(0)
    assert final_value.label != "v0"
