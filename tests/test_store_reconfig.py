"""Live per-shard reconfiguration: shard map epochs, migrations, scenarios.

Covers the versioned :class:`~repro.store.shardmap.ShardMap` (stale-epoch
refusal, explicit forwarding, entry points, the ``key_of`` accounting fix),
the :class:`~repro.store.reconfigurer.ShardReconfigurer` operations (server
moves, DAP flips, key-range rebalances, splits -- with traffic in flight),
the differential/sweep gates for the three PR-5 reconfiguration scenarios,
and the reconfig-rate sweep axes.  The randomized battery lives in
``test_store_reconfig_property.py``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.values import Value
from repro.spec.linearizability import (check_linearizability_per_key,
                                        check_tag_monotonicity_per_key)
from repro.store import (
    ShardSpec,
    StaleEpochError,
    StoreDeployment,
    StoreSpec,
)
from repro.sweep.engine import campaign, execute_run
from repro.sweep.grid import RunSpec, SweepGrid, parse_grid
from repro.workloads.scenarios import run_scenario

RECONFIG_SCENARIOS = ("store_shard_migration_storm", "store_dap_flip_under_chaos",
                      "store_rebalance_hot_range")


def make_store(**overrides) -> StoreDeployment:
    defaults = dict(
        shards=(ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="treas", num_servers=6, k=4, delta=8)),
        num_writers=2, num_readers=2, seed=0)
    defaults.update(overrides)
    return StoreDeployment(StoreSpec(**defaults))


def seed_keys(store: StoreDeployment, count: int = 6) -> list:
    keys = [f"k{i}" for i in range(count)]
    store.multi_put({key: store.writers[0].next_value(64) for key in keys})
    return keys


class TestShardMapEpochs:
    def test_fresh_map_is_epoch_zero_and_resolves(self):
        store = make_store()
        assert store.shard_map.epoch == 0
        cfg = store.shard_map.configuration_for("k0", epoch=0)
        assert cfg is store.shard_map.configuration_for("k0")

    def test_stale_epoch_lookup_raises_instead_of_silently_resolving(self):
        """Regression: lookups used to answer from the only epoch they knew;
        a client holding a pre-migration epoch must be refused explicitly."""
        store = make_store()
        seed_keys(store)
        store.migrate_shard(0, fresh_servers=5)
        assert store.shard_map.epoch == 1
        with pytest.raises(StaleEpochError) as excinfo:
            store.shard_map.configuration_for("k0", epoch=0)
        assert excinfo.value.epoch == 0
        assert excinfo.value.current == 1
        with pytest.raises(StaleEpochError):
            store.shard_map.shard_index("k0", epoch=0)
        with pytest.raises(StaleEpochError):
            store.shard_map.servers_for_key("k0", epoch=0)

    def test_unknown_future_epoch_is_an_error(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.shard_map.configuration_for("k0", epoch=7)
        with pytest.raises(ConfigurationError):
            store.shard_map.forward("k0", 7)

    def test_forward_converges_a_stale_client_with_the_placement_path(self):
        store = make_store(shards=(ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5)))
        seed_keys(store)
        source = store.shard_map.shard_index("k0")
        target = (source + 1) % 3
        store.move_keys(["k0"], target)
        placement = store.shard_map.forward("k0", 0)
        assert placement.shard_index == target
        assert placement.epoch == 1
        assert placement.path == (source, target)

    def test_key_of_resolves_migration_created_configurations(self):
        """Regression: ``key_of`` only consulted the shards, so every
        migrated object's bytes vanished from per-key accounting."""
        store = make_store()
        seed_keys(store)
        before = store.storage_by_key()
        store.migrate_shard(0, fresh_servers=5)
        migrated = store.shard_map.keys_on_shard(0)
        after = store.storage_by_key()
        for key in migrated:
            cfg = store.shard_map.configuration_for(key)
            assert store.shard_map.key_of(cfg.cfg_id) == key
            assert after.get(key, 0) >= before.get(key, 0)

    def test_rebalance_window_does_not_create_a_fresh_empty_register(self):
        """Regression for the bug the property harness caught: while a
        rebalance is in flight, resolving a moved-but-materialised key at
        the new placement must join the existing register, not lazily
        create an empty one on the target shard (a fresh reader would
        return the initial value v0 after acknowledged writes)."""
        store = make_store(shards=(ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5)))
        store.put("k0", Value.from_text("live", label="v-live"))
        source = store.shard_map.shard_index("k0")
        target = 1 - source
        # Take the placement epoch exactly as the reconfigurer does, but do
        # NOT run the data migration: this is the in-flight window.
        store.shard_map.move_keys(["k0"], target)
        cfg = store.shard_map.configuration_for("k0")
        assert cfg.cfg_id.name.startswith(f"st{source}/"), (
            "resolution during the rebalance window left the existing register")
        assert store.get("k0").label == "v-live"

    def test_move_keys_validates_targets(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.shard_map.move_keys(["k0"], 9)
        with pytest.raises(ConfigurationError):
            store.shard_map.move_keys([], 1)


class TestShardMigration:
    def test_migrate_to_fresh_servers_carries_all_objects(self):
        store = make_store()
        keys = seed_keys(store)
        old_servers = set(store.shard_map.shards[0].servers)
        epoch = store.migrate_shard(0, fresh_servers=5)
        assert epoch == 1
        new_servers = set(store.shard_map.shards[0].servers)
        assert old_servers.isdisjoint(new_servers)
        migrated = store.shard_map.keys_on_shard(0)
        assert migrated  # the keyspace hashes onto both shards
        for key in migrated:
            assert set(store.shard_map.servers_for_key(key)) == new_servers
        for key in keys:
            assert store.get(key).label  # every object still readable
        reconfigurer = store.reconfigurers[0]
        assert reconfigurer.completed_migrations == 1
        assert reconfigurer.completed_reconfigs == len(migrated)

    def test_dap_flip_in_place_changes_kind_and_keeps_data(self):
        store = make_store()
        keys = seed_keys(store)
        assert store.shard_map.shards[1].dap == "treas"
        store.migrate_shard(1, dap="abd")
        assert store.shard_map.shards[1].dap == "abd"
        for key in keys:
            value = store.get(key)
            assert value.label.startswith("writer-0:")
        # New objects on the flipped shard materialise as ABD directly.
        fresh = next(f"fresh{i}" for i in range(100)
                     if store.shard_map.shard_index(f"fresh{i}") == 1)
        store.put(fresh, Value.from_text("x", label="vx"))
        cfg = store.shard_map.configuration_for(fresh)
        assert cfg.dap.value == "abd"
        assert "@g1" in cfg.cfg_id.name

    def test_migration_under_live_traffic_stays_linearizable(self):
        store = make_store()
        keys = seed_keys(store, count=8)
        ops = []
        for index, key in enumerate(keys):
            writer = store.writers[index % len(store.writers)]
            ops.append(store.spawn_put(key, writer.next_value(64),
                                       writer_index=index % len(store.writers)))
            ops.append(store.spawn_get(key, reader_index=index % len(store.readers)))
        migration = store.spawn_migrate_shard(0, fresh_servers=5)
        store.run()
        assert migration.done() and migration.exception() is None
        assert all(op.exception() is None for op in ops)
        verdict = check_linearizability_per_key(store.history)
        assert verdict.ok, verdict.reason
        assert check_tag_monotonicity_per_key(store.history) is None

    def test_move_keys_rebalances_and_forwards_stale_clients(self):
        store = make_store(shards=(ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5)))
        keys = seed_keys(store)
        source = store.shard_map.shard_index("k0")
        target = (source + 1) % 3
        epoch = store.move_keys(["k0", "k1"], target)
        assert epoch == 1
        assert store.shard_map.shard_index("k0") == target
        assert store.shard_map.shard_index("k1") == target
        # A client whose cached epoch predates the move converges through
        # the explicit forwarding path on its next fresh resolution.
        reader = store.readers[0]
        assert reader.known_epoch == 0
        unseen = next(f"n{i}" for i in range(100)
                      if f"n{i}" not in reader.known_keys())
        store.put(unseen, Value.from_text("y", label="vy"))
        assert store.get(unseen).label == "vy"
        assert reader.known_epoch == 1
        assert reader.forwarded_lookups == 1
        for key in keys:
            assert store.get(key).label
        verdict = check_linearizability_per_key(store.history)
        assert verdict.ok, verdict.reason

    def test_split_shard_partitions_keys_across_targets(self):
        store = make_store(shards=(ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5),
                                   ShardSpec(dap="abd", num_servers=5)))
        seed_keys(store, count=10)
        source = 0
        before = store.shard_map.keys_on_shard(source)
        assert len(before) >= 2
        store.split_shard(source, 1, 2)
        assert store.shard_map.keys_on_shard(source) == []
        on_one = set(store.shard_map.keys_on_shard(1))
        on_two = set(store.shard_map.keys_on_shard(2))
        assert set(before) <= on_one | on_two
        assert on_one & set(before) and on_two & set(before)
        for key in before:
            assert store.get(key).label
        verdict = check_linearizability_per_key(store.history)
        assert verdict.ok, verdict.reason

    def test_split_needs_distinct_targets(self):
        store = make_store()
        seed_keys(store)
        with pytest.raises(ConfigurationError):
            store.split_shard(0, 1, 1)

    def test_migration_records_keyed_reconfig_operations(self):
        store = make_store()
        seed_keys(store)
        store.migrate_shard(0, fresh_servers=5)
        records = store.history.reconfigs()
        assert records
        assert all(record.key is not None for record in records)
        assert {record.key for record in records} == set(
            store.shard_map.keys_on_shard(0))
        # Keyed RECONFIG records ride inside the per-key sub-histories the
        # checkers consume; they must be accepted (ignored), not rejected.
        verdict = check_linearizability_per_key(store.history)
        assert verdict.ok, verdict.reason
        assert check_tag_monotonicity_per_key(store.history) is None


class TestReconfigScenarioDifferential:
    """The PR-5 differential gate: same seed twice, plus the pooled sweep."""

    @pytest.mark.parametrize("name", RECONFIG_SCENARIOS)
    def test_run_twice_same_seed_is_byte_identical(self, name):
        first = run_scenario(name, seed=5)
        first.verify()
        second = run_scenario(name, seed=5)
        assert first.signature() == second.signature()
        assert first.chaos_log == second.chaos_log
        assert first.signature() != run_scenario(name, seed=6).signature()

    @pytest.mark.parametrize("name", RECONFIG_SCENARIOS)
    def test_pooled_sweep_matches_serial_execution(self, name):
        """``campaign(jobs=2)`` vs in-process execution: the --check-serial
        contract must hold for reconfiguring scenarios too."""
        grid = SweepGrid(scenarios=(name,), seeds=(5,))
        pooled = campaign(grid, jobs=2)
        assert pooled.ok, [r.failure for r in pooled.records if not r.ok]
        serial = execute_run(RunSpec(scenario=name, seed=5))
        assert pooled.records[0].signature_hash == serial.signature_hash
        assert pooled.records[0].checker_method == "per-key(fast)"

    def test_migration_storm_migrates_two_shards(self):
        result = run_scenario("store_shard_migration_storm", seed=0)
        result.verify()
        assert result.deployment.reconfigurers[0].completed_migrations == 2
        assert result.deployment.shard_map.epoch == 2
        # The TREAS shard flipped to ABD on fresh servers.
        assert result.deployment.shard_map.shards[1].dap == "abd"

    def test_dap_flip_scenario_flips_shard_zero(self):
        result = run_scenario("store_dap_flip_under_chaos", seed=0)
        result.verify()
        shard = result.deployment.shard_map.shards[0]
        assert shard.dap == "abd"
        assert shard.generation == 1
        assert any("reconfigure(flip shard 0 treas->abd)" in text
                   for _, text in result.chaos_log)

    def test_rebalance_scenario_moves_the_hot_range(self):
        result = run_scenario("store_rebalance_hot_range", seed=0)
        result.verify()
        shard_map = result.deployment.shard_map
        assert shard_map.epoch == 1
        targets = {shard_map.shard_index(key) for key in ("k0", "k1", "k2", "k3")}
        assert len(targets) == 1  # the whole range landed on one shard
        assert any("rebalance hot range" in text for _, text in result.chaos_log)
        # Some client had to converge through the forwarding path.
        clients = result.deployment.writers + result.deployment.readers
        assert any(client.forwarded_lookups for client in clients)


class TestReconfigRateSweepAxes:
    def test_parse_grid_accepts_reconfig_rate_axes(self):
        grid = parse_grid("scenarios=store_shard_migration_storm;seeds=0;"
                          "num_reconfigs=0,2;reconfig_cadence=4.0,8.0")
        assert grid.params == (("num_reconfigs", (0, 2)),
                               ("reconfig_cadence", (4.0, 8.0)))
        assert len(grid.expand()) == 4

    def test_unknown_axis_error_names_the_reconfig_fields(self):
        with pytest.raises(ValueError, match="num_reconfigs"):
            parse_grid("scenarios=abd_crash_minority;seeds=0;bogus=1")

    def test_reconfig_rate_override_changes_migration_count(self):
        quiet = execute_run(RunSpec(scenario="store_shard_migration_storm",
                                    seed=0, params=(("num_reconfigs", 0),)))
        stormy = execute_run(RunSpec(scenario="store_shard_migration_storm",
                                     seed=0, params=(("num_reconfigs", 2),)))
        assert quiet.ok, quiet.failure
        assert stormy.ok, stormy.failure
        assert quiet.signature_hash != stormy.signature_hash
        assert quiet.cell_id == "store_shard_migration_storm/s0[num_reconfigs=0]"

    def test_reconfig_rate_axis_applies_to_single_register_scenarios(self):
        record = execute_run(RunSpec(scenario="abd_reconfig_crash", seed=0,
                                     params=(("reconfig_cadence", 4.0),
                                             ("num_reconfigs", 1))))
        assert record.ok, record.failure

    def test_inert_cadence_axis_fails_the_cell_explicitly(self):
        """Sweeping reconfig_cadence over a scenario that never reconfigures
        would produce byte-identical cells dressed up as a real sweep; the
        cell must fail with an explicit error (mirroring the keyspace-axis
        mismatch), not report a flat curve."""
        record = execute_run(RunSpec(scenario="abd_crash_minority", seed=0,
                                     params=(("reconfig_cadence", 4.0),)))
        assert not record.ok
        assert "num_reconfigs" in record.failure

    def test_explicit_zero_reconfig_baseline_stays_legitimate(self):
        """A num_reconfigs axis that includes 0 (the no-reconfig baseline of
        a rate sweep) must keep working, even crossed with a cadence axis."""
        record = execute_run(RunSpec(scenario="store_shard_migration_storm",
                                     seed=0, params=(("num_reconfigs", 0),
                                                     ("reconfig_cadence", 4.0))))
        assert record.ok, record.failure
