"""Integration tests for static (single-configuration) registers."""

from __future__ import annotations

import pytest

from repro.common.ids import server_id
from repro.common.values import Value
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment
from repro.spec.history import OperationType
from repro.spec.linearizability import check_linearizability, check_tag_monotonicity
from repro.spec.properties import check_dap_properties


DEPLOYMENT_BUILDERS = {
    "abd": lambda **kw: StaticRegisterDeployment.abd(num_servers=5, **kw),
    "treas": lambda **kw: StaticRegisterDeployment.treas(num_servers=6, k=4, delta=6, **kw),
    "ldr": lambda **kw: StaticRegisterDeployment.ldr(num_directories=3, num_replicas=4, **kw),
}


@pytest.mark.parametrize("kind", sorted(DEPLOYMENT_BUILDERS))
class TestSequentialSemantics:
    def test_read_your_writes(self, kind):
        dep = DEPLOYMENT_BUILDERS[kind](num_writers=1, num_readers=1, seed=1)
        value = Value.of_size(128, label="the-value")
        dep.write(value, 0)
        assert dep.read(0).label == "the-value"

    def test_last_write_wins(self, kind):
        dep = DEPLOYMENT_BUILDERS[kind](num_writers=2, num_readers=1, seed=2)
        dep.write(Value.of_size(64, label="first"), 0)
        dep.write(Value.of_size(64, label="second"), 1)
        dep.write(Value.of_size(64, label="third"), 0)
        assert dep.read(0).label == "third"

    def test_initial_read_returns_initial_value(self, kind):
        dep = DEPLOYMENT_BUILDERS[kind](num_writers=1, num_readers=1, seed=3)
        assert dep.read(0).label == "v0"

    def test_history_latencies_recorded(self, kind):
        dep = DEPLOYMENT_BUILDERS[kind](num_writers=1, num_readers=1, seed=4)
        dep.write(Value.of_size(16, label="x"), 0)
        dep.read(0)
        writes = dep.history.latencies(OperationType.WRITE)
        reads = dep.history.latencies(OperationType.READ)
        assert len(writes) == 1 and writes[0] > 0
        assert len(reads) == 1 and reads[0] > 0


@pytest.mark.parametrize("kind", sorted(DEPLOYMENT_BUILDERS))
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestConcurrentAtomicity:
    def test_concurrent_operations_are_linearizable(self, kind, seed):
        dep = DEPLOYMENT_BUILDERS[kind](
            num_writers=3, num_readers=3, seed=seed,
            latency=UniformLatency(1.0, 5.0), record_dap=True,
        )
        ops = []
        for round_number in range(2):
            for index in range(3):
                ops.append(dep.spawn_write(dep.writers[index].next_value(64), index))
                ops.append(dep.spawn_read(index))
        dep.run()
        assert all(op.exception() is None for op in ops)
        result = check_linearizability(dep.history)
        assert result.ok, result.reason
        assert check_tag_monotonicity(dep.history) is None
        assert check_dap_properties(dep.dap_recorder) == []


class TestCrashTolerance:
    def test_abd_tolerates_minority(self):
        dep = StaticRegisterDeployment.abd(num_servers=5, num_writers=1, num_readers=1)
        dep.servers[server_id(0)].crash()
        dep.servers[server_id(1)].crash()
        dep.write(Value.of_size(32, label="x"), 0)
        assert dep.read(0).label == "x"

    def test_treas_tolerates_f_crashes(self):
        dep = StaticRegisterDeployment.treas(num_servers=9, k=5, delta=2,
                                             num_writers=1, num_readers=1)
        # f = (9 - 5) / 2 = 2
        dep.servers[server_id(7)].crash()
        dep.servers[server_id(8)].crash()
        dep.write(Value.of_size(100, label="x"), 0)
        assert dep.read(0).label == "x"

    def test_writer_crash_mid_operation_leaves_register_consistent(self):
        dep = StaticRegisterDeployment.treas(num_servers=6, k=4, delta=4,
                                             num_writers=2, num_readers=1,
                                             latency=UniformLatency(1.0, 3.0), seed=9)
        # Start a write and crash the writer before it can finish.
        pending = dep.spawn_write(dep.writers[0].next_value(64), 0)
        dep.sim.run_until(1.5)
        dep.writers[0].crash()
        dep.sim.run()
        assert pending.exception() is not None
        # A full write from another client and a read still work and the
        # overall history stays linearizable (the incomplete write may or may
        # not take effect).
        dep.write(dep.writers[1].next_value(64), 1)
        value = dep.read(0)
        assert value.label in {"writer-0:1", "writer-1:1"}
        result = check_linearizability(dep.history)
        assert result.ok, result.reason


class TestStorageAccounting:
    def test_abd_stores_one_copy_per_server(self):
        dep = StaticRegisterDeployment.abd(num_servers=5, num_writers=1, num_readers=1)
        dep.write(Value.of_size(200, label="x"), 0)
        assert dep.total_storage_data_bytes() == 5 * 200

    def test_treas_stores_fragments(self):
        dep = StaticRegisterDeployment.treas(num_servers=6, k=4, delta=2,
                                             num_writers=1, num_readers=1)
        dep.write(Value.of_size(400, label="x"), 0)
        assert dep.total_storage_data_bytes() == 6 * 100
