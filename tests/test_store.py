"""Unit and integration tests of the sharded multi-object store.

Covers the shard map (deterministic placement, per-shard DAP coexistence),
the keyed client operations (round trips, isolation between keys, pipelined
batches), per-key history recording/verification, keyed workload driving
(uniform and Zipf keyspaces) and the store's accounting surface.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.common.errors import ConfigurationError
from repro.common.values import Value
from repro.net.latency import FixedLatency, UniformLatency
from repro.spec.history import OperationType
from repro.spec.linearizability import (
    check_linearizability,
    check_linearizability_per_key,
    check_tag_monotonicity_per_key,
)
from repro.store import (
    SHARD_DAP_KINDS,
    ShardMap,
    ShardSpec,
    StoreDeployment,
    StoreSpec,
    shard_index_for,
)
from repro.workloads.generator import ClosedLoopDriver, KeyspaceSampler, WorkloadSpec

MIXED_SHARDS = (ShardSpec(dap="abd", num_servers=5),
                ShardSpec(dap="treas", num_servers=6, k=4, delta=8),
                ShardSpec(dap="ldr", num_servers=6))


def mixed_store(seed: int = 0, **kwargs) -> StoreDeployment:
    kwargs.setdefault("shards", MIXED_SHARDS)
    kwargs.setdefault("latency", UniformLatency(1.0, 2.0))
    return StoreDeployment(StoreSpec(seed=seed, **kwargs))


# ======================================================================
# Shard map
# ======================================================================

class TestShardMap:
    def test_placement_is_crc32_mod_shards(self):
        for key in ("a", "user:42", "k7", ""):
            assert shard_index_for(key, 3) == zlib.crc32(key.encode()) % 3

    def test_placement_is_stable_across_instances(self):
        first = mixed_store(seed=0)
        second = mixed_store(seed=1)
        for i in range(50):
            key = f"key-{i}"
            assert (first.shard_map.shard_index(key)
                    == second.shard_map.shard_index(key))

    def test_every_shard_receives_keys(self):
        store = mixed_store()
        hit = {store.shard_map.shard_index(f"key-{i}") for i in range(64)}
        assert hit == {0, 1, 2}

    def test_per_shard_dap_kinds_coexist(self):
        store = mixed_store()
        assert [shard.dap for shard in store.shard_map.shards] == \
            ["abd", "treas", "ldr"]
        assert set(SHARD_DAP_KINDS) == {"abd", "treas", "ldr"}

    def test_server_slices_are_disjoint(self):
        store = mixed_store()
        seen = set()
        for shard in store.shard_map.shards:
            assert not (set(shard.servers) & seen)
            seen.update(shard.servers)
        assert len(seen) == 17

    def test_configuration_is_shared_and_registered(self):
        store = mixed_store()
        cfg1 = store.shard_map.configuration_for("k1")
        cfg2 = store.shard_map.configuration_for("k1")
        assert cfg1 is cfg2
        assert store.directory.get(cfg1.cfg_id) is cfg1
        assert cfg1.cfg_id.name == f"st{store.shard_map.shard_index('k1')}/k1"

    def test_key_of_round_trips(self):
        store = mixed_store()
        cfg = store.shard_map.configuration_for("user:7")
        assert store.shard_map.key_of(cfg.cfg_id) == "user:7"
        assert store.shard_map.key_of(cfg.cfg_id) in store.shard_map.shard_for("user:7").keys()

    def test_servers_for_key_matches_configuration(self):
        store = mixed_store()
        servers = store.shard_map.servers_for_key("k3")
        assert servers == list(store.shard_map.shard_for("k3").servers)

    def test_describe_mentions_every_shard(self):
        store = mixed_store()
        store.put("k1", Value.of_size(16, label="x"))
        text = store.shard_map.describe()
        for shard in store.shard_map.shards:
            assert f"shard {shard.index} [{shard.dap}]" in text

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardSpec(dap="raid0")
        with pytest.raises(ConfigurationError):
            ShardSpec(num_servers=0)
        with pytest.raises(ConfigurationError, match="LDR shard"):
            ShardSpec(dap="ldr", num_servers=1)  # zero directories otherwise
        with pytest.raises(ConfigurationError):
            ShardMap(())
        with pytest.raises(ConfigurationError):
            shard_index_for("k", 0)


# ======================================================================
# Keyed operations
# ======================================================================

class TestStoreOperations:
    def test_round_trip_on_every_shard_kind(self):
        store = mixed_store()
        # One key per shard: write then read through different clients.
        by_shard = {}
        i = 0
        while len(by_shard) < 3:
            key = f"key-{i}"
            by_shard.setdefault(store.shard_map.shard_index(key), key)
            i += 1
        for index, key in sorted(by_shard.items()):
            store.put(key, Value.from_text(f"payload-{index}", label=f"v{index}"))
            assert store.get(key).as_text() == f"payload-{index}"

    def test_keys_are_isolated(self):
        store = mixed_store()
        store.put("a", Value.from_text("va", label="la"))
        store.put("b", Value.from_text("vb", label="lb"))
        assert store.get("a").as_text() == "va"
        assert store.get("b").as_text() == "vb"
        # An unwritten key reads the initial (bottom) value.
        assert store.get("never-written").label == "v0"

    def test_writes_to_same_key_supersede(self):
        store = mixed_store()
        store.put("k", Value.from_text("one", label="l1"))
        store.put("k", Value.from_text("two", label="l2"), writer_index=1)
        assert store.get("k").as_text() == "two"

    def test_multi_put_multi_get_round_trip(self):
        store = mixed_store()
        writer = store.writers[0]
        items = {f"k{i}": writer.next_value(32) for i in range(10)}
        tags = store.multi_put(items)
        assert sorted(tags) == sorted(items)
        values = store.multi_get(list(items))
        assert {k: v.label for k, v in values.items()} == \
            {k: v.label for k, v in items.items()}

    def test_multi_get_dedupes_keys(self):
        store = mixed_store()
        store.put("k1", Value.from_text("x", label="lx"))
        values = store.multi_get(["k1", "k1", "k1"])
        assert list(values) == ["k1"]

    def test_batch_pipelines_quorum_rounds(self):
        """A batch over b keys must cost far less than b sequential ops."""
        sequential = StoreDeployment(StoreSpec(
            shards=MIXED_SHARDS, latency=FixedLatency(1.0), seed=3))
        writer = sequential.writers[0]
        for i in range(8):
            sequential.put(f"k{i}", writer.next_value(16))
        start = sequential.sim.now
        for i in range(8):
            sequential.get(f"k{i}")
        sequential_time = sequential.sim.now - start

        batched = StoreDeployment(StoreSpec(
            shards=MIXED_SHARDS, latency=FixedLatency(1.0), seed=3))
        writer = batched.writers[0]
        batched.multi_put({f"k{i}": writer.next_value(16) for i in range(8)})
        start = batched.sim.now
        batched.multi_get([f"k{i}" for i in range(8)])
        batched_time = batched.sim.now - start

        assert batched_time * 4 < sequential_time, (
            f"batched={batched_time} sequential={sequential_time}")

    def test_client_tracks_known_keys(self):
        store = mixed_store()
        store.put("k1", Value.of_size(8, label="l1"))
        store.put("k2", Value.of_size(8, label="l2"))
        assert store.writers[0].known_keys() == ["k1", "k2"]


# ======================================================================
# Keyed histories and verification
# ======================================================================

class TestKeyedHistories:
    def test_operations_record_their_key(self):
        store = mixed_store()
        store.put("k1", Value.of_size(8, label="l1"))
        store.get("k1")
        records = store.history.operations()
        assert [r.key for r in records] == ["k1", "k1"]
        assert records[0].op_type is OperationType.WRITE
        assert store.history.is_keyed()

    def test_split_by_key_partitions_records(self):
        store = mixed_store()
        store.put("a", Value.of_size(8, label="la"))
        store.put("b", Value.of_size(8, label="lb"))
        store.get("a")
        subs = store.history.split_by_key()
        assert sorted(k for k in subs) == ["a", "b"]
        assert len(subs["a"]) == 2
        assert len(subs["b"]) == 1
        assert store.history.keys() == ["a", "b"]
        assert len(store.history.for_key("a")) == 2

    def test_per_key_checker_passes_interleaved_store_history(self):
        store = mixed_store()
        writer = store.writers[0]
        store.multi_put({f"k{i}": writer.next_value(16) for i in range(8)})
        store.multi_get([f"k{i}" for i in range(8)])
        result = check_linearizability_per_key(store.history)
        assert result.ok
        assert result.method == "per-key(fast)"
        assert sorted(k for k in result.results) == sorted(f"k{i}" for i in range(8))
        assert check_tag_monotonicity_per_key(store.history) is None

    def test_whole_history_checker_rejects_cross_key_history(self):
        """The motivation for per-key checking: a multi-object history is
        (in general) not linearizable as a single register."""
        store = mixed_store()

        def pause(client, delay):
            # Strictly separate the operations in real time: back-to-back
            # sync operations share boundary timestamps and would count as
            # concurrent, which a single register could still linearize.
            yield client.sleep(delay)

        store.put("a", Value.of_size(8, label="la"))
        store.sim.run_until_complete(
            store.readers[0].spawn(pause(store.readers[0], 1.0)))
        store.put("b", Value.of_size(8, label="lb"))
        store.sim.run_until_complete(
            store.readers[0].spawn(pause(store.readers[0], 1.0)))
        assert store.get("a").label == "la"  # stale as a *single* register
        whole = check_linearizability(store.history)
        per_key = check_linearizability_per_key(store.history)
        assert per_key.ok
        assert not whole.ok

    def test_merged_signature_covers_all_keys_and_is_deterministic(self):
        def run(seed):
            store = mixed_store(seed=seed)
            writer = store.writers[0]
            store.multi_put({f"k{i}": writer.next_value(16) for i in range(6)})
            return store.history.signature()

        assert run(5) == run(5)
        assert run(5) != run(6)
        keys = {entry[-1] for entry in run(5)}
        assert keys == {f"k{i}" for i in range(6)}

    def test_unkeyed_signature_shape_unchanged(self):
        """Key-less records keep the historical 8-tuple (golden stability)."""
        from repro.workloads.scenarios import run_scenario

        result = run_scenario("abd_crash_minority", seed=0)
        assert all(len(entry) == 8 for entry in result.history.signature())
        assert not result.history.is_keyed()


# ======================================================================
# Keyed workloads
# ======================================================================

class TestKeyedWorkloads:
    def test_uniform_keyed_workload_drives_store(self):
        store = mixed_store(seed=2)
        spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                            value_size=64, num_keys=8,
                            seed=11)
        result = ClosedLoopDriver(store, spec).run()
        assert result.errors == []
        assert result.total_operations == 12
        assert check_linearizability_per_key(store.history).ok

    def test_batched_keyed_workload_drives_store(self):
        store = mixed_store(seed=2)
        spec = WorkloadSpec(operations_per_writer=2, operations_per_reader=2,
                            value_size=64, num_keys=8, batch_size=3, seed=11)
        result = ClosedLoopDriver(store, spec).run()
        assert result.errors == []
        # 4 clients x 2 steps x 3 keys per batch.
        assert result.total_operations == 24
        assert check_linearizability_per_key(store.history).ok

    def test_keyspace_requires_keyed_deployment(self):
        from repro.core.deployment import AresDeployment, DeploymentSpec

        register = AresDeployment(DeploymentSpec(num_servers=3, initial_dap="abd"))
        with pytest.raises(ValueError, match="single-register"):
            ClosedLoopDriver(register, WorkloadSpec(num_keys=4))

    def test_keyed_deployment_requires_keyspace(self):
        with pytest.raises(ValueError, match="num_keys"):
            ClosedLoopDriver(mixed_store(), WorkloadSpec())

    def test_batching_requires_a_keyspace(self):
        """batch_size on a single-register workload must error, not no-op."""
        from repro.core.deployment import AresDeployment, DeploymentSpec

        register = AresDeployment(DeploymentSpec(num_servers=3, initial_dap="abd"))
        with pytest.raises(ValueError, match="batch_size"):
            ClosedLoopDriver(register, WorkloadSpec(batch_size=4))
        with pytest.raises(ValueError, match="batch_size"):
            ClosedLoopDriver(mixed_store(), WorkloadSpec(num_keys=4, batch_size=0))


class TestKeyspaceSampler:
    def test_uniform_covers_the_keyspace(self):
        sampler = KeyspaceSampler(8)
        rng = random.Random(0)
        seen = {sampler.sample(rng) for _ in range(400)}
        assert seen == {f"k{i}" for i in range(8)}

    def test_zipf_is_skewed_towards_k0(self):
        sampler = KeyspaceSampler(16, distribution="zipf", zipf_s=1.4)
        rng = random.Random(0)
        counts = {}
        for _ in range(3000):
            key = sampler.sample(rng)
            counts[key] = counts.get(key, 0) + 1
        assert counts["k0"] == max(counts.values())
        assert counts["k0"] > 3 * counts.get("k15", 1)

    def test_sampling_is_deterministic(self):
        draws = []
        for _ in range(2):
            sampler = KeyspaceSampler(16, distribution="zipf", zipf_s=1.2)
            rng = random.Random(42)
            draws.append([sampler.sample(rng) for _ in range(50)])
        assert draws[0] == draws[1]

    def test_batches_are_distinct_and_complete(self):
        sampler = KeyspaceSampler(4, distribution="zipf", zipf_s=3.0)
        rng = random.Random(1)
        for _ in range(20):
            batch = sampler.sample_batch(rng, 4)
            assert sorted(batch) == ["k0", "k1", "k2", "k3"]
        assert len(sampler.sample_batch(rng, 99)) == 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KeyspaceSampler(0)
        with pytest.raises(ValueError):
            KeyspaceSampler(4, distribution="pareto")


# ======================================================================
# Accounting
# ======================================================================

class TestStoreAccounting:
    def test_storage_by_key_and_shard(self):
        store = mixed_store()
        writer = store.writers[0]
        keys = [f"k{i}" for i in range(6)]
        store.multi_put({key: writer.next_value(128) for key in keys})
        by_key = store.storage_by_key()
        assert sorted(by_key) == keys
        assert all(count > 0 for count in by_key.values())
        by_shard = store.storage_by_shard()
        assert sum(by_shard.values()) == store.total_storage_data_bytes()
        assert sum(by_shard.values()) == sum(by_key.values())

    def test_servers_report_hosted_keys(self):
        store = mixed_store()
        store.put("k1", Value.of_size(64, label="l1"))
        shard = store.shard_map.shard_for("k1")
        hosting = [pid for pid in shard.servers
                   if "k1" in store.servers[pid].hosted_keys()]
        assert hosting, "no server of the key's shard hosts it"
        for other in store.shard_map.shards:
            if other.index == shard.index:
                continue
            for pid in other.servers:
                assert "k1" not in store.servers[pid].hosted_keys()

    def test_spec_or_overrides_not_both(self):
        with pytest.raises(ConfigurationError):
            StoreDeployment(StoreSpec(), num_writers=3)
