"""Documentation gates: catalog sync, link integrity, README docs index.

The scenario catalog at ``docs/SCENARIOS.md`` is generated from the chaos
scenario registry; this suite fails whenever the committed file drifts from
the code (regenerate with ``python -m repro.workloads --list-scenarios
--markdown --output docs/SCENARIOS.md``).  The offline Markdown link
checker from ``tools/check_links.py`` also runs here so broken
cross-references fail the tier-1 matrix, not just the CI docs job.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.workloads.catalog import scenario_catalog_markdown, scenario_listing
from repro.workloads.scenarios import SCENARIOS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestScenarioCatalog:
    def test_committed_catalog_matches_registry(self):
        """docs/SCENARIOS.md must be the registry's current rendering."""
        assert SCENARIOS_MD.exists(), "docs/SCENARIOS.md is missing"
        committed = SCENARIOS_MD.read_text(encoding="utf-8")
        assert committed == scenario_catalog_markdown(), (
            "docs/SCENARIOS.md is out of sync with the scenario registry; "
            "regenerate with: PYTHONPATH=src python -m repro.workloads "
            "--list-scenarios --markdown --output docs/SCENARIOS.md")

    def test_catalog_names_every_scenario(self):
        text = scenario_catalog_markdown()
        for name in SCENARIOS:
            assert f"`{name}`" in text

    def test_listing_names_every_scenario(self):
        listing = scenario_listing()
        for name, scenario in SCENARIOS.items():
            assert name in listing
            assert scenario.description in listing

    def test_cli_emits_the_catalog(self, capsys):
        from repro.workloads.__main__ import main

        assert main(["--list-scenarios", "--markdown"]) == 0
        assert capsys.readouterr().out == scenario_catalog_markdown()

    def test_cli_requires_list_flag(self, capsys):
        from repro.workloads.__main__ import main

        assert main([]) == 2
        capsys.readouterr()

    def test_cli_writes_output_file(self, tmp_path, capsys):
        from repro.workloads.__main__ import main

        target = tmp_path / "catalog.md"
        assert main(["--list-scenarios", "--markdown",
                     "--output", str(target)]) == 0
        capsys.readouterr()
        assert target.read_text() == scenario_catalog_markdown()


class TestMarkdownLinks:
    @pytest.fixture(scope="class")
    def checker(self):
        return _load_check_links()

    def test_all_documentation_links_resolve(self, checker):
        broken = []
        for path in checker.markdown_files():
            broken.extend((str(path), target, problem)
                          for target, problem in checker.check_file(path))
        assert broken == [], f"broken documentation links: {broken}"

    def test_checker_flags_broken_links(self, tmp_path):
        """The gate must actually bite: a fabricated bad link is reported.

        Uses a *fresh* checker instance rooted at ``tmp_path`` so the probe
        file never touches the real ``docs/`` directory (where a parallel
        test or an aborted run would see it as a genuine broken link).
        """
        checker = _load_check_links()
        checker.REPO_ROOT = tmp_path
        (tmp_path / "ARCHITECTURE.md").write_text("# Real heading\n")
        probe = tmp_path / "probe.md"
        probe.write_text("[x](no-such-file.md) "
                         "[y](ARCHITECTURE.md#no-such-heading) "
                         "[ok](ARCHITECTURE.md#real-heading)\n")
        problems = checker.check_file(probe)
        assert len(problems) == 2

    def test_github_slugs(self, checker):
        assert checker.github_slug("## The layer stack".lstrip("# ")) == "the-layer-stack"
        assert checker.github_slug("Tests and benchmarks") == "tests-and-benchmarks"


class TestReadme:
    def test_readme_indexes_the_docs(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in ("docs/ARCHITECTURE.md", "docs/CHAOS.md",
                    "docs/SCENARIOS.md", "docs/OBSERVABILITY.md",
                    "docs/PERFORMANCE.md"):
            assert doc in readme, f"README does not link {doc}"

    def test_readme_reconfig_quickstart_executes(self, capsys):
        """The live-reconfiguration snippet is real code: run it verbatim.

        Extracts the fenced Python block under the "Live reconfiguration &
        rebalancing" heading and executes it; the snippet's own assert
        checks the data survived the migration chain and the final print
        reports the epoch the prose promises.
        """
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "### Live reconfiguration & rebalancing" in readme
        section = readme.split("### Live reconfiguration & rebalancing")[1]
        section = section.split("\n## ")[0]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "reconfig quickstart has no python code block"
        exec(compile(match.group(1), "README:reconfig-quickstart", "exec"), {})
        assert capsys.readouterr().out.strip() == "2"

    def test_readme_gc_quickstart_executes(self, capsys):
        """The configuration-retirement snippet is real code: run it verbatim.

        Extracts the fenced Python block under the "Retiring old
        configurations (GC)" heading and executes it; the snippet's own
        assert checks the value survived retirement, and the final print
        reports the retired-config and reclaimed-byte counts the prose
        promises.
        """
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "### Retiring old configurations (GC)" in readme
        section = readme.split("### Retiring old configurations (GC)")[1]
        section = section.split("\n## ")[0]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "gc quickstart has no python code block"
        exec(compile(match.group(1), "README:gc-quickstart", "exec"), {})
        assert capsys.readouterr().out.strip() == "4 1024"

    def test_readme_gray_failure_quickstart_executes(self, capsys):
        """The gray-failure snippet is real code: run it verbatim.

        Extracts the fenced Python block under the "Gray failures &
        retries" heading and executes it; the snippet's own assert checks
        the client really retried through NACKs, and the final print reads
        the written value back as the prose promises.
        """
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "### Gray failures & retries" in readme
        section = readme.split("### Gray failures & retries")[1]
        section = section.split("\n## ")[0]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "gray-failure quickstart has no python code block"
        exec(compile(match.group(1), "README:gray-failure-quickstart", "exec"), {})
        assert capsys.readouterr().out.strip() == "v1"

    def test_readme_streaming_quickstart_executes(self, capsys):
        """The streaming-verification snippet is real code: run it verbatim.

        Extracts the fenced Python block under the "Streaming verification
        at scale" heading and executes it; the snippet's own asserts check
        the verdict and that every record folded, and the final print
        reports the checker method the prose promises.
        """
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "### Streaming verification at scale" in readme
        section = readme.split("### Streaming verification at scale")[1]
        section = section.split("\n## ")[0]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "streaming quickstart has no python code block"
        exec(compile(match.group(1), "README:streaming-quickstart", "exec"), {})
        assert capsys.readouterr().out.strip() == "per-key(streaming)"

    def test_readme_observability_quickstart_executes(self, capsys):
        """The observability snippet is real code: run it verbatim.

        Extracts the fenced Python block under the "Observability:
        virtual-time metrics & SLOs" heading and executes it; the snippet's
        own asserts check the calibrated SLOs hold and the recovery query
        returns a bounded value, and the final print confirms the message
        counter recorded traffic.
        """
        import re

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        heading = "### Observability: virtual-time metrics & SLOs"
        assert heading in readme
        section = readme.split(heading)[1].split("\n## ")[0]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "observability quickstart has no python code block"
        exec(compile(match.group(1), "README:observability-quickstart",
                     "exec"), {})
        assert capsys.readouterr().out.strip() == "True"

    def test_readme_sweep_example_matches_cli_flags(self):
        """The documented sweep invocation must use real CLI flags."""
        import re

        from repro.sweep.__main__ import main as sweep_main  # noqa: F401 (import check)

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        flags = set(re.findall(r"--[a-z-]+", readme.split("## Scale-out sweeps")[1]
                               .split("## Tests")[0]))
        known = {"--grid", "--jobs", "--chunk", "--checkpoint", "--resume",
                 "--stop-after", "--check-serial", "--streaming", "--bisect",
                 "--output", "--list", "--quiet", "--metrics", "--report"}
        assert flags <= known, f"README documents unknown sweep flags: {flags - known}"
        assert {"--grid", "--jobs", "--chunk", "--checkpoint", "--resume",
                "--check-serial", "--bisect"} <= flags
