"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.common.ids import server_id
from repro.net.latency import FixedLatency, UniformLatency
from repro.net.network import Network
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A network with unit fixed latency over the ``sim`` fixture."""
    return Network(sim, latency=FixedLatency(1.0))


@pytest.fixture
def uniform_network(sim: Simulator) -> Network:
    """A network with uniform latency in [1, 3]."""
    return Network(sim, latency=UniformLatency(1.0, 3.0))


@pytest.fixture
def server_ids():
    """Five server process ids."""
    return [server_id(i) for i in range(5)]
