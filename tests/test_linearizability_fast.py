"""Differential tests: the fast linearizability checker vs Wing-Gong.

The fast value-partition checker (PR 2) must agree with the exhaustive
reference search on *every* history -- it is allowed to defer (fall back),
never to disagree.  These tests drive both checkers over thousands of
seeded random histories, including incomplete writes, reads of the initial
value, deliberately non-linearizable mutations and duplicate-label
histories that force the fallback path, and validate every positive
witness independently.
"""

from __future__ import annotations

import random

import pytest

from repro.common.ids import reader_id, writer_id
from repro.spec.history import History, OperationType
from repro.spec.linearizability import (INITIAL_LABEL, check_linearizability,
                                        check_linearizability_reference)


# ------------------------------------------------------------ history makers
def random_history(rng: random.Random, allow_ghost: bool = True) -> History:
    """A random multi-writer multi-reader register history.

    Writers write unique labels in per-process sequential sessions (~15% of
    writes stay incomplete); readers return a value whose write started
    before the read ended -- plausible but not necessarily linearizable, so
    the generator produces a healthy mix of ok and violating histories.
    """
    history = History()
    labels = []  # (label, write_start, write_end_or_inf)
    ops = []
    for w in range(rng.randint(1, 4)):
        t = 0.0
        for k in range(rng.randint(0, 5)):
            start = t + rng.uniform(0.0, 3.0)
            duration = rng.uniform(0.1, 4.0)
            label = f"w{w}k{k}"
            incomplete = rng.random() < 0.15
            labels.append((label, start, float("inf") if incomplete else start + duration))
            ops.append((writer_id(w), OperationType.WRITE, start,
                        None if incomplete else start + duration, label))
            t = start + duration
    for r in range(rng.randint(1, 4)):
        t = 0.0
        for _ in range(rng.randint(0, 6)):
            start = t + rng.uniform(0.0, 3.0)
            duration = rng.uniform(0.1, 4.0)
            candidates = [lab for lab, ws, _we in labels if ws < start + duration]
            if candidates and rng.random() > 0.25:
                label = rng.choice(candidates)
            else:
                label = INITIAL_LABEL
            if allow_ghost and rng.random() < 0.05:
                label = "ghost"
            ops.append((reader_id(r), OperationType.READ, start, start + duration, label))
            t = start + duration
    for pid, op_type, start, end, label in ops:
        record = history.invoke(pid, op_type, start, value_label=label)
        if end is not None:
            history.respond(record, end, value_label=label)
    return history


def sequential_history(rng: random.Random, n_ops: int) -> History:
    """A linearizable-by-construction history with bounded concurrency.

    A virtual register is updated sequentially; each operation's interval is
    jittered around its linearization point, preserving order.
    """
    history = History()
    current = INITIAL_LABEL
    point = 0.0
    for i in range(n_ops):
        point += rng.uniform(0.5, 1.5)
        jitter_before = rng.uniform(0.0, 0.45)
        jitter_after = rng.uniform(0.0, 0.45)
        if rng.random() < 0.4:
            label = f"x{i}"  # never the INITIAL_LABEL ("v0")
            record = history.invoke(writer_id(i % 3), OperationType.WRITE,
                                    point - jitter_before, value_label=label)
            history.respond(record, point + jitter_after, value_label=label)
            current = label
        else:
            record = history.invoke(reader_id(i % 3), OperationType.READ,
                                    point - jitter_before, value_label=current)
            history.respond(record, point + jitter_after, value_label=current)
    return history


def mutate_non_linearizable(history: History, rng: random.Random) -> History:
    """Inject a definite violation: a read of an old value strictly after a
    newer complete write finished (classic stale read)."""
    writes = [w for w in history.writes() if w.complete]
    if len(writes) < 2:
        return history
    writes.sort(key=lambda w: w.responded_at)
    stale, newer = writes[0], writes[-1]
    if stale.responded_at >= newer.responded_at:
        return history
    start = newer.responded_at + rng.uniform(0.1, 1.0)
    record = history.invoke(reader_id(9), OperationType.READ, start,
                            value_label=stale.value_label)
    history.respond(record, start + rng.uniform(0.1, 1.0),
                    value_label=stale.value_label)
    return history


def duplicate_label_history(rng: random.Random) -> History:
    """Writes reuse labels: the fast checker must defer, and the combined
    checker must still agree with the reference."""
    history = random_history(rng, allow_ghost=False)
    extra = history.invoke(writer_id(8), OperationType.WRITE,
                           rng.uniform(0.0, 5.0), value_label="dup")
    history.respond(extra, extra.invoked_at + rng.uniform(0.5, 2.0), value_label="dup")
    extra2 = history.invoke(writer_id(9), OperationType.WRITE,
                            rng.uniform(0.0, 5.0), value_label="dup")
    history.respond(extra2, extra2.invoked_at + rng.uniform(0.5, 2.0), value_label="dup")
    return history


# ----------------------------------------------------------- witness checker
def validate_witness(history: History, order: list) -> None:
    """Independently validate a claimed linearization (semantics + real time)."""
    by_id = {op.op_id: op for op in history.operations()}
    ops = [by_id[op_id] for op_id in order]
    required = {op.op_id for op in history.operations(complete_only=True)
                if op.op_type in (OperationType.READ, OperationType.WRITE)}
    assert required <= set(order), "witness omits a complete operation"
    current = INITIAL_LABEL
    for op in ops:
        if op.op_type is OperationType.WRITE:
            current = op.value_label
        else:
            assert op.value_label == current, (
                f"witness has {op} reading {op.value_label!r} while the "
                f"register holds {current!r}")
    for i, earlier in enumerate(ops):
        for later in ops[i + 1:]:
            assert not later.precedes(earlier), (
                f"witness orders {earlier} before {later} against real time")


# ------------------------------------------------------------------- tests
class TestDifferential:
    def test_random_histories_agree(self):
        rng = random.Random(0xA11CE)
        fast_decisions = 0
        for _ in range(2000):
            history = random_history(rng)
            combined = check_linearizability(history)
            reference = check_linearizability_reference(history)
            assert combined.ok == reference.ok, (
                f"checkers disagree ({combined.method}): {combined.reason!r} "
                f"vs {reference.reason!r} on\n{history.describe()}")
            if combined.method == "fast":
                fast_decisions += 1
            if combined.ok:
                validate_witness(history, combined.order)
        # The fast path must carry the overwhelming majority of histories,
        # otherwise the fallback erodes the performance win.
        assert fast_decisions > 1800

    def test_sequential_histories_are_fast_and_ok(self):
        rng = random.Random(7)
        for _ in range(200):
            history = sequential_history(rng, rng.randint(0, 60))
            result = check_linearizability(history)
            assert result.ok and result.method == "fast", result.reason
            validate_witness(history, result.order)

    def test_mutated_histories_rejected_by_both(self):
        rng = random.Random(0xBAD)
        rejected = 0
        for _ in range(500):
            history = mutate_non_linearizable(sequential_history(rng, 25), rng)
            combined = check_linearizability(history)
            reference = check_linearizability_reference(history)
            assert combined.ok == reference.ok
            if not combined.ok:
                rejected += 1
        assert rejected > 400, "mutation generator failed to produce violations"

    def test_duplicate_labels_fall_back_and_agree(self):
        rng = random.Random(0xD0B)
        for _ in range(300):
            history = duplicate_label_history(rng)
            combined = check_linearizability(history)
            reference = check_linearizability_reference(history)
            assert combined.ok == reference.ok
            assert combined.method == "reference"

    def test_incomplete_write_read_forces_effect(self):
        rng = random.Random(5)
        seen_pending_read = 0
        for _ in range(500):
            history = random_history(rng)
            pending_labels = {w.value_label for w in history.writes()
                              if not w.complete and not w.failed}
            if any(r.value_label in pending_labels for r in history.reads()):
                seen_pending_read += 1
            assert (check_linearizability(history).ok
                    == check_linearizability_reference(history).ok)
        assert seen_pending_read > 20


class TestFastCheckerUnit:
    def _record(self, history, pid, op_type, start, end, label):
        record = history.invoke(pid, op_type, start, value_label=label)
        if end is not None:
            history.respond(record, end, value_label=label)
        return record

    def test_clean_history_is_decided_fast(self):
        history = History()
        self._record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, "a")
        self._record(history, reader_id(0), OperationType.READ, 2.0, 3.0, "a")
        result = check_linearizability(history)
        assert result.ok and result.method == "fast"
        assert result.states_explored == 0

    def test_stale_read_is_rejected_fast(self):
        history = History()
        self._record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, "a")
        self._record(history, writer_id(0), OperationType.WRITE, 2.0, 3.0, "b")
        self._record(history, reader_id(0), OperationType.READ, 4.0, 5.0, "a")
        result = check_linearizability(history)
        assert not result.ok and result.method == "fast"

    def test_value_from_nowhere_keeps_reason_wording(self):
        history = History()
        self._record(history, reader_id(0), OperationType.READ, 0.0, 1.0, "ghost")
        result = check_linearizability(history)
        assert not result.ok and "no write" in result.reason

    def test_initial_read_after_overwrite_rejected(self):
        history = History()
        self._record(history, writer_id(0), OperationType.WRITE, 0.0, 1.0, "a")
        self._record(history, reader_id(0), OperationType.READ, 2.0, 3.0, INITIAL_LABEL)
        result = check_linearizability(history)
        assert not result.ok
        reference = check_linearizability_reference(history)
        assert not reference.ok

    def test_tag_order_candidate_rescues_ambiguous_min_res_order(self):
        # Two overlapping writes where only the protocol tags reveal the
        # correct segment order; the min-response candidate alone may fail.
        from repro.common.tags import Tag

        history = History()
        w_a = history.invoke(writer_id(0), OperationType.WRITE, 0.0, value_label="a")
        history.respond(w_a, 10.0, value_label="a", tag=Tag(1, writer_id(0)))
        w_b = history.invoke(writer_id(1), OperationType.WRITE, 0.5, value_label="b")
        history.respond(w_b, 9.5, value_label="b", tag=Tag(2, writer_id(1)))
        r_a = history.invoke(reader_id(0), OperationType.READ, 1.0, value_label="a")
        history.respond(r_a, 2.0, value_label="a", tag=Tag(1, writer_id(0)))
        r_b = history.invoke(reader_id(1), OperationType.READ, 3.0, value_label="b")
        history.respond(r_b, 4.0, value_label="b", tag=Tag(2, writer_id(1)))
        result = check_linearizability(history)
        reference = check_linearizability_reference(history)
        assert reference.ok and result.ok
        validate_witness(history, result.order)

    def test_empty_history_fast(self):
        result = check_linearizability(History())
        assert result.ok and result.method == "fast"
