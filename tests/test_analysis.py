"""Tests for the analytic cost/latency formulas and their agreement with measurements."""

from __future__ import annotations

import pytest

from repro.analysis.costs import (
    abd_read_cost,
    abd_storage_cost,
    abd_write_cost,
    measure_operation_traffic,
    treas_read_cost,
    treas_storage_cost,
    treas_write_cost,
)
from repro.analysis.latency import (
    LatencyEnvelope,
    dap_bounds,
    min_delay_for_termination,
    put_config_bounds,
    read_config_bounds,
    read_next_config_bounds,
    reconfig_pipeline_lower_bound,
    rw_operation_upper_bound,
)
from repro.analysis.report import Table
from repro.common.values import Value
from repro.net.latency import FixedLatency
from repro.registers.static import StaticRegisterDeployment


class TestCostFormulas:
    def test_treas_formulas_match_theorem3(self):
        assert treas_storage_cost(n=6, k=4, delta=2) == pytest.approx(4.5)
        assert treas_write_cost(n=6, k=4) == pytest.approx(1.5)
        assert treas_read_cost(n=6, k=4, delta=2) == pytest.approx(6.0)

    def test_abd_formulas(self):
        assert abd_storage_cost(3) == 3
        assert abd_write_cost(3) == 3
        assert abd_read_cost(3) == 6

    def test_treas_beats_abd_for_reasonable_parameters(self):
        # The headline claim: for k ~ 2n/3 and small delta, TREAS stores and
        # moves substantially less data than replication.
        for n in range(5, 16):
            k = -(-2 * n // 3)
            assert treas_write_cost(n, k) < abd_write_cost(n)
            assert treas_storage_cost(n, k, delta=0) < abd_storage_cost(n)


class TestMeasuredCosts:
    def test_treas_write_traffic_matches_formula(self):
        n, k, value_size = 6, 4, 4000
        dep = StaticRegisterDeployment.treas(num_servers=n, k=k, delta=2,
                                             num_writers=1, num_readers=1,
                                             latency=FixedLatency(1.0))
        cost = measure_operation_traffic(
            dep, dep.writers[0].pid,
            lambda: dep.write(Value.of_size(value_size, label="x"), 0),
            value_size=value_size, name="write")
        assert cost.normalised == pytest.approx(treas_write_cost(n, k), rel=0.01)

    def test_treas_read_traffic_below_formula_bound(self):
        n, k, delta, value_size = 6, 4, 2, 4000
        dep = StaticRegisterDeployment.treas(num_servers=n, k=k, delta=delta,
                                             num_writers=1, num_readers=1,
                                             latency=FixedLatency(1.0))
        dep.write(Value.of_size(value_size, label="x"), 0)
        cost = measure_operation_traffic(
            dep, dep.readers[0].pid, lambda: dep.read(0),
            value_size=value_size, name="read")
        assert cost.normalised <= treas_read_cost(n, k, delta) + 0.01
        assert cost.normalised > 0

    def test_abd_write_traffic_matches_formula(self):
        n, value_size = 5, 2000
        dep = StaticRegisterDeployment.abd(num_servers=n, num_writers=1, num_readers=1,
                                           latency=FixedLatency(1.0))
        cost = measure_operation_traffic(
            dep, dep.writers[0].pid,
            lambda: dep.write(Value.of_size(value_size, label="x"), 0),
            value_size=value_size, name="write")
        assert cost.normalised == pytest.approx(abd_write_cost(n), rel=0.01)

    def test_abd_read_traffic_below_formula_bound(self):
        n, value_size = 5, 2000
        dep = StaticRegisterDeployment.abd(num_servers=n, num_writers=1, num_readers=1,
                                           latency=FixedLatency(1.0))
        dep.write(Value.of_size(value_size, label="x"), 0)
        cost = measure_operation_traffic(
            dep, dep.readers[0].pid, lambda: dep.read(0),
            value_size=value_size, name="read")
        assert cost.normalised <= abd_read_cost(n) + 0.01
        assert cost.normalised >= n  # query replies alone carry n copies

    def test_storage_measurement_matches_theorem3(self):
        n, k, delta, value_size = 6, 4, 2, 4000
        dep = StaticRegisterDeployment.treas(num_servers=n, k=k, delta=delta,
                                             num_writers=1, num_readers=1)
        for index in range(delta + 3):  # enough distinct tags to saturate the List
            dep.write(Value.of_size(value_size, label=f"x{index}"), 0)
        measured = dep.total_storage_data_bytes() / value_size
        assert measured == pytest.approx(treas_storage_cost(n, k, delta), rel=0.01)


class TestLatencyFormulas:
    def test_two_phase_bounds(self):
        assert put_config_bounds(1.0, 3.0) == (2.0, 6.0)
        assert read_next_config_bounds(0.5, 2.0) == (1.0, 4.0)
        assert dap_bounds(1.0, 1.0) == (2.0, 2.0)

    def test_read_config_bounds_scale_with_sequence_length(self):
        low1, high1 = read_config_bounds(1.0, 2.0, mu=0, nu=0)
        low3, high3 = read_config_bounds(1.0, 2.0, mu=0, nu=2)
        assert (low1, high1) == (4.0, 8.0)
        assert (low3, high3) == (12.0, 24.0)

    def test_rw_upper_bound(self):
        assert rw_operation_upper_bound(2.0, mu_start=0, nu_end=0) == pytest.approx(24.0)
        assert rw_operation_upper_bound(2.0, mu_start=0, nu_end=3) == pytest.approx(60.0)

    def test_reconfig_pipeline_lower_bound(self):
        # 4d * (1+2+...+k) + k (T(CN) + 2d)
        assert reconfig_pipeline_lower_bound(d=1.0, consensus_delay=10.0, k=3) == \
            pytest.approx(4 * 6 + 3 * 12)

    def test_min_delay_for_termination(self):
        value = min_delay_for_termination(D=2.0, consensus_delay=4.0, k=4)
        assert value == pytest.approx(3 * 2.0 / 4 - 4.0 / (2 * 6))

    def test_envelope_wrapper(self):
        env = LatencyEnvelope(d=1.0, D=2.0, consensus_delay=5.0)
        assert env.read_config(0, 1) == read_config_bounds(1.0, 2.0, 0, 1)
        assert env.rw_operation(0, 1) == rw_operation_upper_bound(2.0, 0, 1)
        assert env.reconfig_pipeline(2) == reconfig_pipeline_lower_bound(1.0, 5.0, 2)
        assert env.termination_threshold(2) == min_delay_for_termination(2.0, 5.0, 2)


class TestTable:
    def test_render_alignment_and_content(self):
        table = Table("Example", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("beta", 2.5)
        text = table.render()
        assert "Example" in text
        assert "alpha" in text and "2.500" in text
        assert len(text.splitlines()) == 6

    def test_row_arity_checked(self):
        table = Table("Example", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
