"""Property-test harness for in-flight store reconfigurations.

Every seed derives a randomized *plan*: a store layout (ABD / TREAS / LDR
shard mixes), a keyed closed-loop workload (single-key reads/writes and
pipelined ``multi_put``/``multi_get`` batches) and a fault schedule
interleaving live reconfigurations -- shard migrations onto fresh servers,
in-place DAP flips, key-range rebalances, shard splits -- with a tolerated
server crash and packet chaos (duplication/reordering).  The plan executes
on the simulator and **every run** is verified for

* liveness       -- no stalled or errored client session or migration,
* atomicity      -- per-key linearizability over records spanning config
                    epochs,
* tag monotonicity across epochs (per key),
* determinism    -- a second execution of the same seed must reproduce the
                    history and the chaos log byte-for-byte.

Seed selection: the harness covers seeds 0..99 in CI, sharded into four
buckets by the ``STORE_RECONFIG_SEEDS`` environment variable (``lo..hi`` or
a comma list).  Unset, a 25-seed smoke bucket runs so tier-1 stays fast::

    STORE_RECONFIG_SEEDS=25..49 pytest tests/test_store_reconfig_property.py

On failure the offending plan is dumped as JSON into
``$STORE_RECONFIG_REPRO_DIR`` (default ``store-reconfig-failures/``) so CI
can upload the repro -- re-running the named seed reproduces the run
byte-for-byte.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

import pytest

from repro.chaos import At, ChaosEngine, Crash, Duplicate, During, Reconfigure, \
    Reorder, Schedule
from repro.net.latency import UniformLatency
from repro.spec.linearizability import (check_linearizability_per_key,
                                        check_tag_monotonicity_per_key)
from repro.store import ShardSpec, StoreDeployment, StoreSpec
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec

# --------------------------------------------------------------- seed ranges

DEFAULT_SEEDS = "0..24"
FULL_SEED_COUNT = 100


def _parse_seeds(text: str) -> List[int]:
    text = text.strip()
    if ".." in text:
        lo, hi = text.split("..", 1)
        seeds = list(range(int(lo), int(hi) + 1))
    else:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    if not seeds:
        # A misconfigured CI job (empty matrix value, STORE_RECONFIG_SEEDS=)
        # must fail loudly, not go green having verified zero seeds.
        raise ValueError(f"STORE_RECONFIG_SEEDS selected no seeds: {text!r}")
    return seeds


SEEDS = _parse_seeds(os.environ.get("STORE_RECONFIG_SEEDS", DEFAULT_SEEDS))


# ------------------------------------------------------------------ the plan
#
# Shard layouts.  Crash victims are drawn only from the *initial* servers of
# ABD shards: an ABD-5 shard tolerates 2 lost servers and the harness
# crashes at most one, so every configuration a migration creates or
# retires keeps its quorums (TREAS [6,4] tolerates 1 and LDR 3+3 one
# directory plus one replica -- the harness never crashes those shards).

LAYOUTS: Tuple[Tuple[str, Tuple[ShardSpec, ...]], ...] = (
    ("abd+abd", (ShardSpec(dap="abd", num_servers=5),
                 ShardSpec(dap="abd", num_servers=5))),
    ("abd+treas", (ShardSpec(dap="abd", num_servers=5),
                   ShardSpec(dap="treas", num_servers=6, k=4, delta=8))),
    ("abd+ldr+abd", (ShardSpec(dap="abd", num_servers=5),
                     ShardSpec(dap="ldr", num_servers=6),
                     ShardSpec(dap="abd", num_servers=5))),
)


@dataclass
class ReconfigEvent:
    """One scheduled live reconfiguration of the plan."""

    time: float
    kind: str  # "fresh" | "flip" | "move" | "split"
    shard: int = 0
    target: int = 0
    right: int = 0
    keys: List[str] = field(default_factory=list)


@dataclass
class Plan:
    """A fully-derived, JSON-serialisable description of one property run."""

    seed: int
    layout: str
    num_keys: int
    batch_size: int
    zipf: bool
    think_time: float
    operations: int
    events: List[ReconfigEvent]
    crash_time: Optional[float]
    crash_server: Optional[str]
    chaos_window: Optional[Tuple[float, float]]

    def describe(self) -> dict:
        """The JSON repro payload (everything needed to re-derive the run)."""
        return asdict(self)


def make_plan(seed: int) -> Plan:
    """Derive the seed's randomized schedule (pure: no simulator involved)."""
    rng = random.Random(f"store-reconfig-property-{seed}")
    layout_name, shards = LAYOUTS[rng.randrange(len(LAYOUTS))]
    num_shards = len(shards)
    num_keys = rng.randint(6, 10)

    kinds = ["fresh", "flip", "move"] + (["split"] if num_shards >= 3 else [])
    events: List[ReconfigEvent] = []
    for _ in range(rng.randint(1, 2)):
        time = round(rng.uniform(4.0, 22.0), 2)
        kind = kinds[rng.randrange(len(kinds))]
        shard = rng.randrange(num_shards)
        event = ReconfigEvent(time=time, kind=kind, shard=shard)
        if kind == "move":
            count = rng.randint(1, 3)
            event.keys = [f"k{i}" for i in
                          sorted(rng.sample(range(num_keys), count))]
            event.target = rng.randrange(num_shards)
        elif kind == "split":
            event.target = (shard + 1) % num_shards
            event.right = (shard + 2) % num_shards
        events.append(event)

    # At most one crash, only ever of an initial ABD-shard server.
    crash_time = crash_server = None
    if rng.random() < 0.5:
        abd_shards = [i for i, s in enumerate(shards) if s.dap == "abd"]
        victim_shard = abd_shards[rng.randrange(len(abd_shards))]
        offset = sum(s.num_servers for s in shards[:victim_shard])
        crash_server = f"s{offset + rng.randrange(shards[victim_shard].num_servers)}"
        crash_time = round(rng.uniform(6.0, 26.0), 2)

    chaos_window = None
    if rng.random() < 0.5:
        start = round(rng.uniform(2.0, 8.0), 2)
        chaos_window = (start, round(start + rng.uniform(15.0, 30.0), 2))

    return Plan(
        seed=seed,
        layout=layout_name,
        num_keys=num_keys,
        batch_size=rng.choice((1, 1, 2)),
        zipf=rng.random() < 0.3,
        think_time=rng.choice((1.0, 2.0)),
        operations=rng.randint(3, 4),
        events=events,
        crash_time=crash_time,
        crash_server=crash_server,
        chaos_window=chaos_window,
    )


# ----------------------------------------------------------------- execution

def _migrate_fresh(deployment: StoreDeployment, shard_index: int):
    """Fire-time action: re-slice a shard onto as many fresh servers as it
    *currently* has (an earlier event may have changed its size/kind)."""
    count = len(deployment.shard_map.shards[shard_index].servers)
    return deployment.spawn_migrate_shard(shard_index, fresh_servers=count)


def _flip_dap(deployment: StoreDeployment, shard_index: int):
    """Fire-time action: flip the shard's *current* DAP kind.

    The branch is taken when the event fires, not when the schedule is
    built, so a second event on a shard an earlier event already flipped
    really flips it back.  ABD -> TREAS recruits 6 fresh servers so the
    [6, 4] quorum keeps fault tolerance 1; everything else flips to ABD in
    place (majority quorums on the existing slice).
    """
    if deployment.shard_map.shards[shard_index].dap == "abd":
        return deployment.spawn_migrate_shard(shard_index, dap="treas",
                                              fresh_servers=6, k=4, delta=8)
    return deployment.spawn_migrate_shard(shard_index, dap="abd")


def _event_entry(deployment: StoreDeployment, event: ReconfigEvent) -> At:
    """Translate one plan event into a scheduled ``Reconfigure`` action.

    Actions inspect the deployment at *fire* time (see :func:`_flip_dap`)
    -- everything they read is deterministic simulator state, so the run
    stays byte-reproducible.
    """
    if event.kind == "fresh":
        action = (lambda s=event.shard: _migrate_fresh(deployment, s))
        note = f"shard {event.shard} -> fresh servers"
    elif event.kind == "flip":
        action = (lambda s=event.shard: _flip_dap(deployment, s))
        note = f"flip shard {event.shard}"
    elif event.kind == "move":
        action = (lambda keys=tuple(event.keys), t=event.target:
                  deployment.spawn_move_keys(list(keys), t))
        note = f"move {','.join(event.keys)} -> shard {event.target}"
    elif event.kind == "split":
        action = (lambda s=event.shard, l=event.target, r=event.right:
                  deployment.spawn_split_shard(s, l, r))
        note = f"split shard {event.shard} -> {event.target}/{event.right}"
    else:  # pragma: no cover - plan generator only emits the kinds above
        raise ValueError(f"unknown plan event kind {event.kind!r}")
    return At(event.time, Reconfigure(action, note=note))


def run_plan(plan: Plan):
    """Execute the plan once; returns ``(deployment, engine, errors)``."""
    deployment = StoreDeployment(StoreSpec(
        shards=LAYOUTS[[name for name, _ in LAYOUTS].index(plan.layout)][1],
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=plan.seed))
    engine = ChaosEngine(deployment.network,
                         seed=f"chaos-store-reconfig-{plan.seed}")
    entries: List = [_event_entry(deployment, event) for event in plan.events]
    if plan.crash_server is not None:
        entries.append(At(plan.crash_time, Crash(plan.crash_server)))
    if plan.chaos_window is not None:
        start, end = plan.chaos_window
        entries.append(During(start, end, Duplicate(0.2), Reorder(1.0)))
    engine.inject(Schedule(entries))

    workload = WorkloadSpec(
        operations_per_writer=plan.operations,
        operations_per_reader=plan.operations,
        value_size=128,
        think_time=plan.think_time,
        num_keys=plan.num_keys,
        key_distribution="zipf" if plan.zipf else "uniform",
        zipf_s=1.3,
        batch_size=plan.batch_size,
    )
    driver = ClosedLoopDriver(deployment, workload,
                              rng=random.Random(f"workload-store-reconfig-{plan.seed}"))
    result = driver.run()
    errors = list(result.errors) + engine.operation_errors()
    return deployment, engine, errors


def signature(deployment: StoreDeployment, engine: ChaosEngine) -> tuple:
    """Determinism witness: merged keyed history + chaos log."""
    return (deployment.history.signature(), tuple(engine.log))


# -------------------------------------------------------------- repro dumps

REPRO_DIR = pathlib.Path(os.environ.get("STORE_RECONFIG_REPRO_DIR",
                                        "store-reconfig-failures"))


def _dump_repro(plan: Plan, failure: str) -> None:
    REPRO_DIR.mkdir(parents=True, exist_ok=True)
    payload = {"scenario": "store_reconfig_property", "plan": plan.describe(),
               "failure": failure,
               "rerun": (f"STORE_RECONFIG_SEEDS={plan.seed} python -m pytest "
                         "tests/test_store_reconfig_property.py")}
    path = REPRO_DIR / f"seed-{plan.seed}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))


# ------------------------------------------------------------------ the test

def verify_seed(seed: int) -> None:
    """Run one seed twice and assert every property (see module docstring)."""
    plan = make_plan(seed)
    deployment, engine, errors = run_plan(plan)
    try:
        assert errors == [], (
            f"seed {seed} lost liveness: {errors}\nchaos log:\n"
            f"{engine.describe_log()}")
        # The run must actually have reconfigured something.
        reconfig_log = [text for _, text in engine.log if "reconfigure" in text]
        assert reconfig_log, f"seed {seed} scheduled no reconfiguration"
        # A split of a shard with no materialised keys is a legitimate no-op;
        # every other event kind must have advanced the map's epoch.
        if any(event.kind != "split" for event in plan.events):
            assert deployment.shard_map.epoch >= 1
        migrated = deployment.history.reconfigs()
        # Per-key RECONFIG records span the epochs the checkers must accept.
        assert all(record.key is not None for record in migrated)

        verdict = check_linearizability_per_key(deployment.history)
        assert verdict.ok, (
            f"seed {seed} violated per-key atomicity: {verdict.reason}\n"
            f"chaos log:\n{engine.describe_log()}")
        monotonic = check_tag_monotonicity_per_key(deployment.history)
        assert monotonic is None, (
            f"seed {seed} violated tag monotonicity across epochs: {monotonic}")

        # Byte-identical determinism: a second execution of the same plan
        # must reproduce the merged history and the chaos log exactly.
        second_deployment, second_engine, second_errors = run_plan(plan)
        assert second_errors == errors
        assert signature(second_deployment, second_engine) == \
            signature(deployment, engine), (
            f"seed {seed} is not deterministic: two executions diverged")
    except AssertionError as exc:
        _dump_repro(plan, str(exc))
        raise


@pytest.mark.parametrize("seed", SEEDS)
def test_reconfig_under_randomized_schedules(seed):
    """The acceptance battery: every selected seed passes all properties."""
    verify_seed(seed)


# --------------------------------------------------- harness self-diagnostics

def test_seed_selection_parses_ranges_and_lists():
    assert _parse_seeds("0..3") == [0, 1, 2, 3]
    assert _parse_seeds("5,9, 11") == [5, 9, 11]
    assert len(_parse_seeds(f"0..{FULL_SEED_COUNT - 1}")) == FULL_SEED_COUNT
    for empty in ("", "   ", ","):
        with pytest.raises(ValueError, match="no seeds"):
            _parse_seeds(empty)


def test_plans_are_seed_deterministic_and_diverse():
    """Plan derivation is pure, and the full seed range exercises every
    event kind, every layout, crashes and packet chaos."""
    plans = [make_plan(seed) for seed in range(FULL_SEED_COUNT)]
    again = [make_plan(seed) for seed in range(FULL_SEED_COUNT)]
    assert [p.describe() for p in plans] == [p.describe() for p in again]
    kinds = {event.kind for plan in plans for event in plan.events}
    assert kinds == {"fresh", "flip", "move", "split"}
    assert {plan.layout for plan in plans} == {name for name, _ in LAYOUTS}
    assert any(plan.crash_server for plan in plans)
    assert any(plan.chaos_window for plan in plans)
    assert any(plan.batch_size > 1 for plan in plans)
    assert any(plan.zipf for plan in plans)


def test_repro_dump_written_on_failure(tmp_path, monkeypatch):
    """The CI artifact path: a failing seed leaves a self-contained repro."""
    import sys

    monkeypatch.setattr(sys.modules[__name__], "REPRO_DIR", tmp_path)
    plan = make_plan(0)
    _dump_repro(plan, "synthetic failure")
    payload = json.loads((tmp_path / "seed-0.json").read_text())
    assert payload["failure"] == "synthetic failure"
    assert payload["plan"]["seed"] == 0
    assert "STORE_RECONFIG_SEEDS=0" in payload["rerun"]
