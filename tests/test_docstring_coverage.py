"""Lightweight docstring-coverage gate for the thinnest packages.

Walks the public surface (modules, classes, functions, methods) of the
packages listed in :data:`CHECKED_PACKAGES` and fails on any entry point
without a docstring.  This is the CI enforcement behind the "document the
sweep/chaos entry points" policy: new public API in these packages must
arrive documented.

Private names (leading underscore), dunders and symbols re-exported from
other packages are exempt; only objects *defined* in a checked module
count, so the gate never flags third-party or lower-layer code.  A method
override also counts as documented when a base class documents the same
method (e.g. every fault's ``start``/``stop`` is specified once on
``Fault``) -- requiring a redundant one-liner per override would add noise,
not documentation.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

#: Packages whose public surface must be fully docstringed.
CHECKED_PACKAGES = (
    "repro.chaos",
    "repro.obs",
    "repro.store",
    "repro.sweep",
    "repro.workloads",
)


def _iter_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package_name, package
    for info in pkgutil.walk_packages(package.__path__, prefix=package_name + "."):
        yield info.name, importlib.import_module(info.name)


def _public_members(module_name: str, module):
    """Public classes/functions *defined* in ``module`` (not re-exports)."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        yield name, obj


def _documented_in_hierarchy(cls, attr_name: str) -> bool:
    """Whether ``attr_name`` carries a docstring anywhere in ``cls``'s MRO."""
    for base in cls.__mro__:
        attr = vars(base).get(attr_name)
        if attr is not None and (getattr(attr, "__doc__", None) or "").strip():
            return True
    return False


def _missing_docstrings(module_name: str, module):
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module_name)
    for name, obj in _public_members(module_name, module):
        if not (obj.__doc__ or "").strip():
            missing.append(f"{module_name}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if not _documented_in_hierarchy(obj, attr_name):
                    missing.append(f"{module_name}.{name}.{attr_name}")
    return missing


@pytest.mark.parametrize("package_name", CHECKED_PACKAGES)
def test_public_surface_is_docstringed(package_name):
    missing = []
    for module_name, module in _iter_modules(package_name):
        missing.extend(_missing_docstrings(module_name, module))
    assert missing == [], (
        f"public entry points of {package_name} without docstrings: {missing}")


def test_gate_covers_a_nontrivial_surface():
    """Guard against the walker silently matching nothing."""
    names = []
    for package_name in CHECKED_PACKAGES:
        for module_name, module in _iter_modules(package_name):
            names.extend(name for name, _ in _public_members(module_name, module))
    assert len(names) >= 30, f"docstring gate only saw {len(names)} symbols"
