"""Determinism goldens: the hot-path overhaul must not move a single byte.

``tests/data/golden_signatures.json`` pins a SHA-256 of every registered
chaos scenario's ``ChaosRunResult.signature()`` (operation history plus
chaos log), captured on the pre-overhaul implementation.  Any change to
event ordering, RNG draw sequencing, latency sampling or label bookkeeping
shows up here as a hash mismatch.

When a future PR *intentionally* changes executions (new fault kinds, new
scenario entries), regenerate the fixture with::

    PYTHONPATH=src python - <<'EOF'
    import json, hashlib
    from repro.workloads.scenarios import scenario_names, run_scenario
    golden = {n: hashlib.sha256(repr(run_scenario(n, seed=0).signature()).encode()).hexdigest()
              for n in scenario_names()}
    json.dump(golden, open("tests/data/golden_signatures.json", "w"), indent=1, sort_keys=True)
    EOF
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.spec.linearizability import (check_linearizability,
                                        check_linearizability_per_key)
from repro.workloads.scenarios import run_scenario, scenario_names

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_signatures.json"


def _signature_hash(result) -> str:
    return hashlib.sha256(repr(result.signature()).encode()).hexdigest()


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def test_fixture_covers_every_registered_scenario(golden):
    assert sorted(golden) == sorted(scenario_names())


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_signature_matches_golden(name, golden):
    result = run_scenario(name, seed=0)
    assert _signature_hash(result) == golden[name], (
        f"scenario {name!r} diverged from its pre-overhaul execution -- "
        "a hot-path change altered event ordering or RNG sequencing")


def test_scenario_histories_are_decided_by_the_fast_checker():
    """The registered scenarios' histories must not hit the DFS fallback.

    If one does, chaos verification silently reverts to the exponential
    reference search, which is exactly the cost PR 2 removed.  Keyed store
    scenarios are checked per key; every per-key sub-history must likewise
    be decided by the fast checker.
    """
    for name in scenario_names():
        result = run_scenario(name, seed=0)
        if result.history.is_keyed():
            verdict = check_linearizability_per_key(result.history)
            expected_method = "per-key(fast)"
        else:
            verdict = check_linearizability(result.history)
            expected_method = "fast"
        assert verdict.ok, f"{name}: {verdict.reason}"
        assert verdict.method == expected_method, (
            f"{name} fell back to the reference search")
