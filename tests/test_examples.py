"""Smoke tests ensuring every example script runs to completion.

The examples double as end-to-end acceptance tests of the public API: each
one is executed in-process (so coverage tools see it) and must finish without
raising.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS])
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {s.stem for s in EXAMPLE_SCRIPTS}
    assert {"quickstart", "erasure_vs_replication",
            "rolling_reconfiguration", "failure_and_recovery"} <= names
