"""Decode error-path coverage for the Reed-Solomon code.

The chaos layer feeds decoders whatever survives crashes, duplication and
partitions, so every malformed-input path must fail loudly (a
:class:`~repro.common.errors.DecodeError`) rather than reconstruct garbage.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import DecodeError
from repro.common.values import Value
from repro.erasure.interface import CodedElement
from repro.erasure.rs import ReedSolomonCode


@pytest.fixture
def code() -> ReedSolomonCode:
    return ReedSolomonCode(6, 4)


@pytest.fixture
def elements(code):
    return code.encode(Value.of_size(1000, label="payload"))


class TestDecodeErrorPaths:
    def test_index_above_range_rejected(self, code, elements):
        bad = dataclasses.replace(elements[0], index=code.n)
        with pytest.raises(DecodeError, match="out of range"):
            code.decode([bad, *elements[1:4]])

    def test_negative_index_rejected(self, code, elements):
        bad = dataclasses.replace(elements[0], index=-1)
        with pytest.raises(DecodeError, match="out of range"):
            code.decode([bad, *elements[1:4]])

    def test_fewer_than_k_elements_rejected(self, code, elements):
        with pytest.raises(DecodeError, match="need 4 distinct"):
            code.decode(elements[:3])

    def test_no_elements_rejected(self, code):
        with pytest.raises(DecodeError, match="need 4 distinct"):
            code.decode([])

    def test_duplicated_indices_do_not_count_toward_k(self, code, elements):
        # Four elements, but only three distinct indices: a duplicated reply
        # (e.g. from the chaos Duplicate fault) must not satisfy the quorum.
        with pytest.raises(DecodeError, match="need 4 distinct"):
            code.decode([elements[0], elements[0], elements[1], elements[2]])

    def test_duplicates_alongside_k_distinct_still_decode(self, code, elements):
        decoded = code.decode([elements[0], elements[0], *elements[1:4]])
        assert decoded.size == 1000
        assert decoded.label == "payload"

    def test_none_entries_are_ignored(self, code, elements):
        decoded = code.decode([None, *elements[:4]])
        assert decoded.size == 1000
        with pytest.raises(DecodeError, match="need 4 distinct"):
            code.decode([None, None, *elements[:3]])

    def test_inconsistent_fragment_sizes_rejected(self, code, elements):
        bad = dataclasses.replace(elements[0], payload=elements[0].payload + b"x")
        with pytest.raises(DecodeError, match="inconsistent fragment sizes"):
            code.decode([bad, *elements[1:4]])

    def test_disagreeing_original_sizes_rejected(self, code, elements):
        bad = dataclasses.replace(elements[0], original_size=999)
        with pytest.raises(DecodeError, match="disagree on the original value size"):
            code.decode([bad, *elements[1:4]])

    def test_mixed_parity_and_data_fragments_with_bad_index(self, code, elements):
        # A parity fragment whose index was corrupted into the valid range
        # but duplicates another fragment's index reduces the distinct count.
        bad = dataclasses.replace(elements[5], index=elements[1].index)
        with pytest.raises(DecodeError, match="need 4 distinct"):
            code.decode([bad, elements[1], elements[2], elements[3]])


class TestDecodeRecovery:
    @pytest.mark.parametrize("drop", range(6))
    def test_any_single_fragment_loss_is_recoverable(self, code, elements, drop):
        survivors = [e for e in elements if e.index != drop]
        decoded = code.decode(survivors)
        assert decoded.size == 1000

    def test_parity_only_subset_decodes(self, code, elements):
        # Worst case for the decode matrix: no systematic fragment survives.
        # [6, 4] has only 2 parity fragments, so take both plus two data ones.
        subset = [elements[4], elements[5], elements[0], elements[1]]
        assert code.decode(subset).size == 1000
