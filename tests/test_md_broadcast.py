"""Tests for the metadata-consistent broadcast used by ARES-TREAS (Section 5).

The ``md-primitive`` of [21] must deliver a forward request to either *all*
non-faulty servers of the old configuration or to *none*, even if the
reconfiguration client crashes mid-broadcast.  The implementation achieves
this with a server-side echo: the first server to receive the request relays
it to every peer.  These tests exercise exactly that corner.
"""

from __future__ import annotations

import pytest

from repro.common.values import Value
from repro.core.ares_treas import FWD_CODE_ELEM, MD_BCAST_REQ_FW
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import FixedLatency, UniformLatency


def make_deployment(**overrides):
    defaults = dict(num_servers=6, initial_dap="treas", delta=4, num_writers=1,
                    num_readers=1, num_reconfigurers=1, seed=0,
                    latency=UniformLatency(1.0, 2.0), direct_state_transfer=True)
    defaults.update(overrides)
    return AresDeployment(DeploymentSpec(**defaults))


class TestEchoDelivery:
    def test_every_old_server_sees_the_forward_request(self):
        dep = make_deployment()
        dep.write(Value.of_size(400, label="x"), 0)
        old_cfg = dep.initial_configuration
        cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(cfg, 0)
        # Every live server of the old configuration saw (and de-duplicated)
        # the broadcast: its transfer state recorded the broadcast id.
        for pid in old_cfg.servers:
            state = dep.servers[pid].dap_states.get(old_cfg.cfg_id)
            assert state is not None
            assert len(state._seen_broadcasts) == 1

    def test_duplicate_echoes_do_not_duplicate_forwards(self):
        dep = make_deployment(latency=FixedLatency(1.0))
        dep.write(Value.of_size(400, label="x"), 0)
        old_n = dep.initial_configuration.n
        cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(cfg, 0)
        forwards = dep.stats.by_kind(FWD_CODE_ELEM).messages
        # Each old server forwards its element to each new server exactly once.
        assert forwards <= old_n * cfg.n
        broadcasts = dep.stats.by_kind(MD_BCAST_REQ_FW).messages
        # Original fan-out (n) plus one echo round (n * (n - 1)).
        assert broadcasts == old_n + old_n * (old_n - 1)


class TestReconfigurerCrashMidBroadcast:
    def test_all_or_none_despite_client_crash(self):
        """Crash the reconfigurer after it reached only one old server.

        The echo relay must still deliver the forward request to every other
        old server, so the new configuration ends up holding a decodable copy
        of the value (the "all" side of all-or-none), and a later
        reconfiguration by another client finds a consistent system.
        """
        dep = make_deployment(num_reconfigurers=2, latency=FixedLatency(1.0))
        dep.write(Value.of_size(600, label="survivor"), 0)
        reconfigurer = dep.reconfigurers[0]
        cfg = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        handle = dep.spawn_reconfig(cfg, 0)
        # Let the reconfiguration proceed through read-config, consensus and
        # the start of the md-broadcast, then kill the client.  With unit
        # latencies the broadcast messages are already in flight, so the echo
        # phase runs entirely among the servers.
        dep.sim.run_until(dep.sim.now + 30.0)
        reconfigurer.crash()
        dep.sim.run()
        # The reconfig operation itself never completes...
        assert handle.exception() is not None or handle.done()
        # ...but the forward request reached every old server (all-or-none).
        old_cfg = dep.initial_configuration
        seen = [len(dep.servers[pid].dap_states[old_cfg.cfg_id]._seen_broadcasts)
                for pid in old_cfg.servers
                if old_cfg.cfg_id in dep.servers[pid].dap_states]
        assert seen and all(count == seen[0] for count in seen)
        # The object is still readable (through whichever configurations a
        # fresh traversal discovers), and a second reconfigurer can finish the
        # job cleanly.
        assert dep.read(0).label == "survivor"
        cfg2 = dep.make_configuration(dap="treas", fresh_servers=6, k=4)
        dep.reconfig(cfg2, 1)
        assert dep.read(0).label == "survivor"
