"""SLO regression tests: recovery envelopes as first-class assertions.

The gray-degradation and reconfiguration scenarios carry calibrated SLOs
(see their registrations in ``repro.workloads.scenarios``): "p99 read
latency recovers within N virtual seconds of heal", "reconfiguration
completes within its envelope", "NACKs stay (near) zero".  These tests pin
that the envelopes hold on a small seed set -- a scheduler, retry-policy
or quorum regression that slows recovery now fails here *quantitatively*
even while every history stays perfectly linearizable.

The negative control is the proof the DSL measures anything at all:
replacing a scenario's healing fault window with a permanent (never
healed) fault must break its recovery SLO.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.chaos.faults import LatencySpike
from repro.chaos.schedule import At, Schedule
from repro.obs import slo
from repro.workloads.scenarios import (get_scenario, run_scenario,
                                       run_scenario_instance)

#: Every scenario that registers SLOs, gated on a small tier-1 seed set.
SLO_SCENARIOS = (
    "abd_reconfig_crash",
    "treas_reconfig_partition",
    "ldr_reconfig_crash",
    "abd_gray_degradation",
    "treas_gray_degradation",
    "ldr_gray_degradation",
)

SEEDS = (0, 1)


def test_slo_scenarios_is_exactly_the_registered_set():
    from repro.workloads.scenarios import SCENARIOS

    with_slos = sorted(name for name, scenario in SCENARIOS.items()
                       if scenario.slos)
    assert with_slos == sorted(SLO_SCENARIOS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SLO_SCENARIOS)
def test_registered_slos_hold(name, seed):
    result = run_scenario(name, seed=seed, metrics=True)
    assert result.check_slos() == []


def test_check_slos_without_metrics_is_an_explicit_error():
    result = run_scenario("abd_gray_degradation", seed=0)
    with pytest.raises(ValueError, match="metrics=True"):
        result.check_slos()


@pytest.mark.parametrize(
    "name", ("abd_gray_degradation", "treas_gray_degradation",
             "ldr_gray_degradation"))
def test_zero_nacks_at_fault_rate_zero(name):
    """At ``fault_rate=0`` the stochastic background arms nothing, so the
    retry/NACK machinery must be perfectly quiet -- the "zero NACKs at
    fault_rate=0" SLO, asserted inline with a strict zero bound."""
    scenario = replace(get_scenario(name), fault_rate=0.0,
                       slos=(slo.rate("nacks").below(0.0),
                             slo.rate("retries").below(0.0)))
    result = run_scenario_instance(scenario, seed=0, metrics=True)
    assert result.check_slos() == []
    assert result.metrics.counter_total("nacks") == 0


def test_negative_control_removing_heal_breaks_the_recovery_slo():
    """Swap ldr_gray_degradation's healing ``During`` window for a permanent
    ``At`` fault: the scripted heal never happens, the recovery SLO anchors
    on the background drain instead, and the assertion must fail.  This is
    the gate that the SLO DSL actually *measures* recovery rather than
    vacuously passing."""
    base = get_scenario("ldr_gray_degradation")
    never_heals = replace(
        base,
        schedule=lambda d: Schedule([At(12.0, LatencySpike(1.5))]))
    broken = run_scenario_instance(never_heals, seed=0, metrics=True)
    failures = broken.check_slos()
    assert failures, "recovery SLO passed despite the heal being removed"
    assert any("read_latency" in message for message in failures)

    # Same seed, original scenario: the SLO holds, so the failure above is
    # attributable to the removed heal, not to the seed.
    healthy = run_scenario("ldr_gray_degradation", seed=0, metrics=True)
    assert healthy.check_slos() == []


def test_slo_failure_messages_are_actionable():
    """A broken bound names the series, the bound and the observed value."""
    report = run_scenario("abd_gray_degradation", seed=0,
                          metrics=True).metrics
    impossible = slo.p99("read_latency").within(0.001)
    message = impossible.evaluate(report)
    assert message is not None
    assert "read_latency" in message and "0.001" in message
    assert "worst window" in message


def test_slo_value_object_semantics():
    """SLOs embed in frozen dataclasses: equality/hash follow description."""
    a = slo.p99("read_latency", after="heal", grace=5.0).within(10.0)
    b = slo.p99("read_latency", after="heal", grace=5.0).within(10.0)
    assert a == b and hash(a) == hash(b)
    assert a != slo.p99("read_latency").within(10.0)
    assert "read_latency" in repr(a)
