"""Unit tests for the chaos subsystem: faults, schedule DSL, engine, hooks."""

from __future__ import annotations

import pytest

from repro.chaos import (
    At,
    ChaosEngine,
    Crash,
    Drop,
    Duplicate,
    During,
    Heal,
    Isolate,
    LatencySpike,
    Partition,
    Reorder,
    Restart,
    Schedule,
    SlowServer,
)
from repro.common.errors import SimulationError
from repro.common.ids import server_id
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import FixedLatency, UniformLatency
from repro.spec.linearizability import check_linearizability


def abd_deployment(seed: int = 0, latency=None) -> AresDeployment:
    return AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="abd", num_writers=1, num_readers=1,
        num_reconfigurers=1, latency=latency or UniformLatency(1.0, 2.0),
        seed=seed))


class TestScheduleDsl:
    def test_entries_are_validated(self):
        with pytest.raises(ValueError):
            At(-1.0, Crash("s0"))
        with pytest.raises(ValueError):
            At(5.0)  # no faults
        with pytest.raises(ValueError):
            During(10.0, 10.0, Crash("s0"))  # empty window
        with pytest.raises(ValueError):
            During(10.0, 5.0, Crash("s0"))  # inverted window
        with pytest.raises(TypeError):
            Schedule([Crash("s0")])  # bare fault, not At/During

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError):
            Partition({"s0", "s1"})

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            Drop(1.5)
        with pytest.raises(ValueError):
            Duplicate(probability=-0.1)
        with pytest.raises(ValueError):
            Reorder(-1.0)

    def test_describe_is_time_ordered(self):
        schedule = Schedule([
            At(50, Crash("s3")),
            During(10, 20, Isolate("s4")),
        ])
        lines = schedule.describe().splitlines()
        assert lines[0].startswith("during [10, 20)")
        assert lines[1].startswith("at t=50")

    def test_schedules_merge(self):
        merged = Schedule([At(30, Crash("s1"))]) + Schedule([At(10, Crash("s0"))])
        assert len(merged) == 2
        assert merged.describe().splitlines()[0] == "at t=10: crash(s0)"


class TestEngineResolution:
    def test_shorthand_and_full_names(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        assert engine.resolve("s3") == server_id(3)
        assert engine.resolve("server-3") == server_id(3)
        assert engine.resolve(server_id(3)) == server_id(3)
        assert engine.resolve("w0").name == "writer-0"
        assert engine.resolve("r0").name == "reader-0"
        assert engine.resolve("g0").name == "reconfigurer-0"

    def test_unknown_target_raises(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        with pytest.raises(SimulationError):
            engine.resolve("s99")
        with pytest.raises(SimulationError):
            engine.resolve(server_id(99))


class TestFaultMechanics:
    def test_crash_and_restart(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([At(5, Crash("s4")), At(15, Restart("s4"))]))
        deployment.sim.run_until(10)
        assert deployment.network.is_crashed(server_id(4))
        deployment.sim.run_until(20)
        assert not deployment.network.is_crashed(server_id(4))
        # A restarted server still answers quorum requests.
        deployment.write(Value.from_text("post-restart", label="v1"))
        assert deployment.read().label == "v1"

    def test_isolate_drops_cross_island_traffic_and_heals(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(0.0001, 50, Isolate("s3", "s4"))]))
        deployment.write(Value.from_text("during partition", label="v1"))
        assert deployment.network.messages_dropped > 0
        deployment.sim.run_until(60)
        assert not engine.active  # window closed, hooks removed
        dropped_at_heal = deployment.network.messages_dropped
        deployment.write(Value.from_text("after heal", label="v2"))
        assert deployment.network.messages_dropped == dropped_at_heal

    def test_heal_stops_partitions_early(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([
            During(1, 100, Isolate("s3")),
            At(5, Heal()),
        ]))
        deployment.sim.run_until(10)
        assert not engine.active
        # The During's stop entry at t=100 is a no-op after the heal.
        deployment.sim.run_until(110)
        assert not engine.active

    def test_duplicate_inflates_deliveries_but_not_quorums(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network, seed=1)
        engine.inject(Schedule([During(0.0001, 1000, Duplicate(1.0, copies=2))]))
        deployment.write(Value.from_text("dup", label="v1"))
        assert deployment.read().label == "v1"
        assert deployment.network.messages_duplicated > 0
        result = check_linearizability(deployment.history)
        assert result.ok, result.reason

    def test_slow_server_delays_only_its_traffic(self):
        deployment = abd_deployment(latency=FixedLatency(1.0))
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([During(0.5, 1000, SlowServer("s0", factor=10.0))]))
        deployment.sim.run_until(1.0)  # spawn() sends synchronously; pass the window start
        deliveries = []
        deployment.network.add_observer(
            lambda src, dest, message, at: deliveries.append((src, dest, at - deployment.sim.now)))
        deployment.write(Value.from_text("slow", label="v1"))
        slow = [d for s, d_, d in deliveries if s == server_id(0) or d_ == server_id(0)
                for d in [d]]
        fast = [d for s, d_, d in deliveries if s != server_id(0) and d_ != server_id(0)
                for d in [d]]
        assert slow and fast
        assert min(slow) == pytest.approx(10.0)
        assert max(fast) == pytest.approx(1.0)

    def test_latency_spike_slows_everything(self):
        deployment = abd_deployment(latency=FixedLatency(1.0))
        ChaosEngine(deployment.network).inject(
            Schedule([During(0.5, 1000, LatencySpike(factor=3.0, extra=0.5))]))
        deployment.sim.run_until(1.0)  # spawn() sends synchronously; pass the window start
        deliveries = []
        deployment.network.add_observer(
            lambda src, dest, message, at: deliveries.append(at - deployment.sim.now))
        deployment.write(Value.from_text("spike", label="v1"))
        assert min(deliveries) == pytest.approx(3.5)

    def test_drop_filters_by_destination(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network, seed=2)
        engine.inject(Schedule([During(0.0001, 1000, Drop(1.0, dst=("s4",)))]))
        deployment.write(Value.from_text("lossy", label="v1"))
        assert deployment.read().label == "v1"  # majority of 5 unaffected
        assert deployment.network.messages_dropped > 0

    def test_fault_object_reused_across_overlapping_windows(self):
        # One fault instance in two overlapping During windows: the first
        # stop must retire only its own activation, not the second window's.
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        fault = Isolate("s4")
        engine.inject(Schedule([During(1, 10, fault), During(5, 20, fault)]))
        deployment.sim.run_until(7)
        assert engine.active == [fault, fault]
        assert len(deployment.network._drop_filters) == 2
        deployment.sim.run_until(15)
        assert engine.active == [fault]  # second window still active
        assert len(deployment.network._drop_filters) == 1
        deployment.sim.run_until(25)
        assert engine.active == []
        assert not deployment.network._drop_filters

    def test_messages_sent_during_downtime_are_lost_despite_restart(self):
        # A request addressed to a crashed server must not be delivered even
        # when the server restarts before the delivery time arrives.
        deployment = abd_deployment(latency=FixedLatency(5.0))
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([At(1, Crash("s4")), At(3, Restart("s4"))]))
        deployment.sim.run_until(2)  # s4 is down
        from repro.net.message import Message

        dropped_before = deployment.network.messages_dropped
        deployment.network.send(server_id(0), server_id(4), Message(kind="PING"))
        deployment.sim.run_until(10)  # restart at 3, delivery due at 7
        assert not deployment.network.is_crashed(server_id(4))
        assert deployment.network.messages_dropped == dropped_before + 1

    def test_chaos_log_is_timestamped(self):
        deployment = abd_deployment()
        engine = ChaosEngine(deployment.network)
        engine.inject(Schedule([At(7, Crash("s4")), During(3, 9, Isolate("s3"))]))
        deployment.sim.run_until(20)
        times = [t for t, _ in engine.log]
        assert times == sorted(times) == [3, 7, 9]
        assert "crash(s4)" in engine.describe_log()


class TestSubstrateHooks:
    def test_quorum_gather_dedupes_repeated_responders(self):
        from repro.sim.core import Simulator
        from repro.sim.futures import QuorumFuture

        future = QuorumFuture(Simulator(), threshold=2, distinct_by=lambda r: r[0])
        future.add_response(("a", 1))
        future.add_response(("a", 2))
        assert not future.done()
        assert future.duplicates_ignored == 1
        future.add_response(("b", 3))
        assert future.done()
        assert [key for key, _ in future.result()] == ["a", "b"]

    def test_restart_is_noop_for_running_process(self):
        deployment = abd_deployment()
        deployment.network.restart(server_id(0))
        assert not deployment.network.is_crashed(server_id(0))
