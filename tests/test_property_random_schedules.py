"""Property-based atomicity tests over randomly generated operation schedules.

Hypothesis generates small schedules of concurrent client operations (with
start offsets, value sizes, crash points and optional reconfigurations); each
schedule is executed on the deterministic simulator and the resulting history
must be linearizable with the DAP properties intact.  Shrinking then gives a
minimal failing schedule if a safety bug is ever introduced.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment
from repro.spec.linearizability import check_linearizability, check_tag_monotonicity
from repro.spec.properties import check_dap_properties

# One scheduled client action: (kind, client index, start delay, value size)
action = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(0, 2),
    st.floats(0.0, 10.0),
    st.sampled_from([16, 64, 256]),
)

schedules = st.lists(action, min_size=1, max_size=10)

RELAXED = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def execute_schedule(deployment, schedule):
    """Run the schedule, keeping each client well-formed.

    The paper's model requires well-formed clients (a client invokes at most
    one operation at a time), so actions that land on the same client are
    executed sequentially within one session coroutine; actions on different
    clients run concurrently.  Each action still waits out its start delay,
    so sessions interleave at random points.
    """
    sessions = {}
    for kind, index, delay, size in schedule:
        pool = deployment.writers if kind == "write" else deployment.readers
        client = pool[index % len(pool)]
        sessions.setdefault(client.pid, (client, []))[1].append((kind, delay, size))

    def session(client, actions):
        results = []
        for kind, delay, size in actions:
            yield client.sleep(delay)
            if kind == "write":
                results.append((yield from client.write(client.next_value(size))))
            else:
                results.append((yield from client.read()))
        return results

    operations = [client.spawn(session(client, actions))
                  for client, actions in sessions.values()]
    deployment.run()
    return operations


def assert_safe(deployment, operations):
    errors = [op.exception() for op in operations if op.exception() is not None]
    assert not errors, errors
    result = check_linearizability(deployment.history)
    assert result.ok, result.reason
    assert check_tag_monotonicity(deployment.history) is None
    if deployment.dap_recorder is not None:
        assert check_dap_properties(deployment.dap_recorder) == []


class TestRandomSchedulesStatic:
    @RELAXED
    @given(schedule=schedules, seed=st.integers(0, 1000))
    def test_treas_register_is_always_atomic(self, schedule, seed):
        deployment = StaticRegisterDeployment.treas(
            num_servers=6, k=4, delta=12, num_writers=3, num_readers=3,
            latency=UniformLatency(1.0, 4.0), seed=seed, record_dap=True)
        operations = execute_schedule(deployment, schedule)
        assert_safe(deployment, operations)

    @RELAXED
    @given(schedule=schedules, seed=st.integers(0, 1000))
    def test_abd_register_is_always_atomic(self, schedule, seed):
        deployment = StaticRegisterDeployment.abd(
            num_servers=5, num_writers=3, num_readers=3,
            latency=UniformLatency(1.0, 4.0), seed=seed, record_dap=True)
        operations = execute_schedule(deployment, schedule)
        assert_safe(deployment, operations)


class TestRandomSchedulesAres:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schedule=schedules, seed=st.integers(0, 1000),
           reconfig_delay=st.floats(0.0, 15.0),
           target_dap=st.sampled_from(["treas", "abd"]))
    def test_ares_with_one_random_reconfiguration(self, schedule, seed,
                                                  reconfig_delay, target_dap):
        deployment = AresDeployment(DeploymentSpec(
            num_servers=5, initial_dap="treas", delta=12, num_writers=3,
            num_readers=3, num_reconfigurers=1,
            latency=UniformLatency(1.0, 3.0), seed=seed, record_dap=True))
        reconfigurer = deployment.reconfigurers[0]
        fresh = 5 if target_dap == "treas" else 3
        configuration = deployment.make_configuration(dap=target_dap, fresh_servers=fresh)

        def delayed_reconfig():
            yield reconfigurer.sleep(reconfig_delay)
            result = yield from reconfigurer.reconfig(configuration)
            return result

        operations = [reconfigurer.spawn(delayed_reconfig())]
        operations += execute_schedule(deployment, schedule)
        assert_safe(deployment, operations)
