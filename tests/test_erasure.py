"""Unit and property-based tests for the erasure-coding substrate."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DecodeError
from repro.common.values import Value
from repro.erasure.gf256 import (
    FIELD_SIZE,
    gf_add,
    gf_div,
    gf_inverse,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
)
from repro.erasure.matrix import (
    identity_matrix,
    matrix_invert,
    matrix_multiply,
    systematic_generator,
    vandermonde_matrix,
)
from repro.erasure.replication import ReplicationCode
from repro.erasure.rs import (ReedSolomonCode, decode_cache_clear,
                              decode_cache_info)
from repro.erasure.striping import (join_matrix, join_shards, shard_length,
                                    split_into_matrix, split_into_shards)

field_elements = st.integers(0, 255)
nonzero_elements = st.integers(1, 255)


class TestGF256:
    @given(field_elements, field_elements)
    def test_addition_is_commutative_and_self_inverse(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)
        assert gf_add(gf_add(a, b), b) == a

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(field_elements, field_elements, field_elements)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(nonzero_elements)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1

    @given(field_elements, nonzero_elements)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)

    def test_multiplicative_identity(self):
        for a in range(FIELD_SIZE):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    @given(nonzero_elements, st.integers(0, 10))
    def test_pow_matches_repeated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf_mul(expected, a)
        assert gf_pow(a, exponent) == expected

    @given(field_elements, st.binary(min_size=0, max_size=64))
    def test_vectorised_multiplication_matches_scalar(self, scalar, data):
        array = np.frombuffer(data, dtype=np.uint8).copy()
        vectorised = gf_mul_bytes(scalar, array)
        scalarised = np.array([gf_mul(scalar, int(x)) for x in array], dtype=np.uint8)
        assert np.array_equal(vectorised, scalarised)


class TestMatrices:
    def test_identity_inverts_to_itself(self):
        eye = identity_matrix(4)
        assert np.array_equal(matrix_invert(eye), eye)

    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_inverse_times_matrix_is_identity(self, size):
        matrix = vandermonde_matrix(size, size)
        inverse = matrix_invert(matrix)
        assert np.array_equal(matrix_multiply(inverse, matrix), identity_matrix(size))

    def test_singular_matrix_rejected(self):
        singular = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(DecodeError):
            matrix_invert(singular)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            matrix_invert(np.zeros((2, 3), dtype=np.uint8))

    @pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (7, 5), (9, 6)])
    def test_systematic_generator_every_k_rows_invertible(self, n, k):
        generator = systematic_generator(n, k)
        assert np.array_equal(generator[:k, :], identity_matrix(k))
        for rows in itertools.combinations(range(n), k):
            submatrix = generator[list(rows), :]
            matrix_invert(submatrix)  # must not raise: MDS property

    def test_vandermonde_too_large(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(300, 2)


class TestStriping:
    def test_shard_length_ceil(self):
        assert shard_length(10, 3) == 4
        assert shard_length(9, 3) == 3
        assert shard_length(0, 3) == 0

    def test_shard_length_invalid_k(self):
        with pytest.raises(ValueError):
            shard_length(10, 0)

    @given(st.binary(min_size=0, max_size=200), st.integers(1, 8))
    def test_split_join_round_trip(self, payload, k):
        shards = split_into_shards(payload, k)
        assert len(shards) == k
        assert len({len(s) for s in shards}) <= 1
        assert join_shards(shards, len(payload)) == payload

    # ------------------------------------------------- zero-copy guarantees
    def test_split_returns_views_not_copies(self):
        # Multiple-of-k payload: rows are reshape views of the payload bytes.
        payload = bytes(range(12))
        shards = split_into_shards(payload, 3)
        assert all(shard.base is not None for shard in shards)
        base = split_into_matrix(payload, 3)
        assert base.base is not None  # view of the frombuffer wrapper

    def test_split_with_padding_shares_one_buffer(self):
        shards = split_into_shards(b"0123456789", 3)  # 10 bytes, pad to 12
        bases = {id(shard.base) for shard in shards}
        assert len(bases) == 1  # all rows view the single padded buffer

    @given(st.binary(min_size=0, max_size=100), st.integers(1, 7))
    def test_matrix_and_shards_agree(self, payload, k):
        block = split_into_matrix(payload, k)
        shards = split_into_shards(payload, k)
        assert block.shape == (k, shard_length(len(payload), k))
        assert all(np.array_equal(block[i], shards[i]) for i in range(k))
        assert join_matrix(block, len(payload)) == payload

    # ------------------------------------------------ round-trip edge cases
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_empty_payload_round_trip(self, k):
        shards = split_into_shards(b"", k)
        assert len(shards) == k and all(len(shard) == 0 for shard in shards)
        assert join_shards(shards, 0) == b""
        assert join_matrix(split_into_matrix(b"", k), 0) == b""

    @given(st.integers(2, 9), st.data())
    def test_payload_shorter_than_k(self, k, data):
        payload = data.draw(st.binary(min_size=1, max_size=k - 1))
        shards = split_into_shards(payload, k)
        assert all(len(shard) == 1 for shard in shards)
        assert join_shards(shards, len(payload)) == payload

    @given(st.integers(1, 8), st.integers(1, 6), st.integers(1, 200))
    def test_non_multiple_of_k_round_trip(self, k, remainder, scale):
        size = k * scale + (remainder % k if k > 1 else 0)
        payload = bytes(i % 251 for i in range(size))
        assert join_shards(split_into_shards(payload, k), size) == payload

    @given(st.integers(1, 8), st.integers(1, 200))
    def test_zero_padding_join_skips_concatenate(self, k, scale):
        # Exact multiples exercise the padding-free join path.
        payload = bytes(i % 256 for i in range(k * scale))
        assert join_shards(split_into_shards(payload, k), len(payload)) == payload


class TestReedSolomon:
    @pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (6, 4), (9, 6), (11, 7)])
    def test_any_k_fragments_decode(self, n, k):
        code = ReedSolomonCode(n, k)
        value = Value(payload=bytes(range(256)) * 4, label="payload")
        elements = code.encode(value)
        assert len(elements) == n
        for subset in itertools.combinations(elements, k):
            decoded = code.decode(subset)
            assert decoded.payload == value.payload

    def test_fragment_size_is_value_size_over_k(self):
        code = ReedSolomonCode(6, 3)
        value = Value.of_size(999)
        elements = code.encode(value)
        assert all(e.size == 333 for e in elements)
        assert code.fragment_size(999) == 333

    def test_fewer_than_k_fragments_rejected(self):
        code = ReedSolomonCode(5, 3)
        elements = code.encode(Value.of_size(100))
        with pytest.raises(DecodeError):
            code.decode(elements[:2])

    def test_duplicate_indices_do_not_count_twice(self):
        code = ReedSolomonCode(5, 3)
        elements = code.encode(Value.of_size(90))
        with pytest.raises(DecodeError):
            code.decode([elements[0], elements[0], elements[0]])

    def test_inconsistent_fragment_sizes_rejected(self):
        code = ReedSolomonCode(4, 2)
        good = code.encode(Value.of_size(100))
        bad = code.encode(Value.of_size(50))
        with pytest.raises(DecodeError):
            code.decode([good[0], bad[1]])

    def test_out_of_range_index_rejected(self):
        code = ReedSolomonCode(4, 2)
        elements = ReedSolomonCode(6, 2).encode(Value.of_size(100))
        with pytest.raises(DecodeError):
            code.decode([elements[5], elements[4]])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(2, 3)
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 0)
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 100)

    def test_storage_overhead(self):
        assert ReedSolomonCode(6, 4).storage_overhead() == pytest.approx(1.5)
        assert ReedSolomonCode(3, 1).storage_overhead() == pytest.approx(3.0)

    def test_empty_value(self):
        code = ReedSolomonCode(5, 3)
        elements = code.encode(Value(payload=b"", label="empty"))
        assert code.decode(elements[:3]).payload == b""

    def test_label_preserved(self):
        code = ReedSolomonCode(4, 2)
        elements = code.encode(Value.of_size(10, label="hello"))
        assert code.decode(elements[2:]).label == "hello"

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=512), st.integers(2, 9))
    def test_round_trip_property(self, payload, n):
        k = max(1, (2 * n) // 3)
        code = ReedSolomonCode(n, k)
        value = Value(payload=payload, label="prop")
        elements = code.encode(value)
        # decode from the last k elements (a mix of data and parity shards)
        assert code.decode(elements[n - k:]).payload == payload

    def test_parameters_dict(self):
        assert ReedSolomonCode(5, 3).parameters() == {"n": 5, "k": 3}


class TestDecodeInverseCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        decode_cache_clear()
        yield
        decode_cache_clear()

    def test_differential_cached_vs_uncached(self):
        """Every survivor subset decodes identically with and without the cache.

        The uncached reference inverts the submatrix from scratch per call
        (exactly the pre-cache code path); the cached path must return
        byte-identical payloads for every subset, cold and warm.
        """
        from repro.erasure.gf256 import gf_matmul
        from repro.erasure.matrix import matrix_invert

        n, k = 6, 4
        code = ReedSolomonCode(n, k)
        value = Value(payload=bytes(range(256)) * 3 + b"tail", label="diff")
        elements = code.encode(value)
        for subset in itertools.combinations(elements, k):
            indices = [e.index for e in subset]
            # Uncached reference decode.
            inverse = matrix_invert(code.generator[indices, :])
            fragments = np.stack(
                [np.frombuffer(e.payload, dtype=np.uint8) for e in subset])
            reference = gf_matmul(inverse, fragments).tobytes()[: value.size]
            # Cached decode, cold then warm.
            assert code.decode(subset).payload == reference == value.payload
            assert code.decode(subset).payload == reference

    def test_repeated_quorum_hits_cache(self):
        code = ReedSolomonCode(6, 4)
        elements = code.encode(Value.of_size(4096, label="x"))
        survivors = elements[2:]  # mixes data and parity rows
        for _ in range(5):
            code.decode(survivors)
        info = decode_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4

    def test_all_data_shards_skip_matrix_entirely(self):
        # The identity survivor set needs neither an inverse nor a matmul.
        code = ReedSolomonCode(6, 4)
        elements = code.encode(Value.of_size(1000, label="x"))
        decoded = code.decode(elements[:4])
        assert decoded.size == 1000
        info = decode_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_cache_shared_across_instances(self):
        value = Value.of_size(100)
        first = ReedSolomonCode(6, 4)
        second = ReedSolomonCode(6, 4)
        survivors = first.encode(value)[2:]
        first.decode(survivors)
        second.decode(survivors)
        info = decode_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_distinct_codes_do_not_collide(self):
        # [6, 4] and [5, 4] share surviving-index tuples; the (n, k) in the
        # key must keep their (different) generators apart.
        value = Value.of_size(64)
        big, small = ReedSolomonCode(6, 4), ReedSolomonCode(5, 4)
        survivors_big = big.encode(value)[2:]
        survivors_small = small.encode(value)[1:]
        assert big.decode(survivors_big).payload == value.payload
        assert small.decode(survivors_small).payload == value.payload
        assert decode_cache_info()["misses"] == 2

    def test_cache_is_bounded(self):
        # C(14, 3) = 364 distinct survivor sets > the 256-entry bound, so the
        # LRU must evict; only the identity set (0, 1, 2) skips the cache.
        code = ReedSolomonCode(14, 3)
        elements = code.encode(Value.of_size(30))
        for subset in itertools.combinations(elements, 3):
            assert code.decode(subset).size == 30
        info = decode_cache_info()
        assert info["misses"] == 363
        assert info["size"] == info["maxsize"]

    def test_clear_resets_counters(self):
        code = ReedSolomonCode(5, 3)
        survivors = code.encode(Value.of_size(9))[2:]
        code.decode(survivors)
        code.decode(survivors)
        decode_cache_clear()
        info = decode_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0,
                        "maxsize": info["maxsize"]}


class TestReplication:
    def test_every_copy_is_the_full_value(self):
        code = ReplicationCode(4)
        value = Value.of_size(77, label="x")
        elements = code.encode(value)
        assert len(elements) == 4
        assert all(e.size == 77 for e in elements)

    def test_decode_from_any_single_copy(self):
        code = ReplicationCode(3)
        value = Value.of_size(50, label="x")
        elements = code.encode(value)
        for element in elements:
            assert code.decode([element]).payload == value.payload

    def test_decode_with_no_copies(self):
        with pytest.raises(DecodeError):
            ReplicationCode(3).decode([])

    def test_is_decodable(self):
        code = ReplicationCode(3)
        elements = code.encode(Value.of_size(5))
        assert code.is_decodable(elements[:1])
        assert not code.is_decodable([])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReplicationCode(0)

    def test_storage_overhead_equals_n(self):
        assert ReplicationCode(5).storage_overhead() == pytest.approx(5.0)
