"""E4 -- Operation latency vs. number of concurrent clients.

Sweeps the number of concurrent readers and writers driving an ABD-backed
and a TREAS-backed register and reports mean read/write latency.  The δ
parameter of the TREAS configuration is set to the writer count so that
reads stay live at every concurrency level (Theorem 9's requirement).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec

CLIENT_COUNTS = [1, 2, 4, 8, 16]
VALUE_SIZE = 4096


def run_workload(kind: str, clients: int, seed: int = 0):
    if kind == "treas":
        deployment = StaticRegisterDeployment.treas(
            num_servers=9, k=6, delta=max(2, 2 * clients), num_writers=clients,
            num_readers=clients, latency=UniformLatency(1.0, 2.0), seed=seed)
    else:
        deployment = StaticRegisterDeployment.abd(
            num_servers=9, num_writers=clients, num_readers=clients,
            latency=UniformLatency(1.0, 2.0), seed=seed)
    spec = WorkloadSpec(operations_per_writer=3, operations_per_reader=3,
                        value_size=VALUE_SIZE)
    result = ClosedLoopDriver(deployment, spec).run()
    assert result.errors == []
    return result


@pytest.mark.experiment("E4")
def test_latency_vs_concurrency(benchmark):
    table = Table(
        "E4: mean operation latency (sim time) vs concurrent clients per role (n=9)",
        ["clients", "abd write", "abd read", "treas write", "treas read", "treas ops/time"],
    )
    for clients in CLIENT_COUNTS:
        abd = run_workload("abd", clients)
        treas = run_workload("treas", clients)
        table.add_row(clients, abd.mean_write_latency, abd.mean_read_latency,
                      treas.mean_write_latency, treas.mean_read_latency,
                      treas.throughput)
    table.print()

    benchmark(lambda: run_workload("treas", 4))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
