"""Pre-optimisation reference implementations, kept for benchmark A/B runs.

``bench_simcore.py`` and ``perf_report.py`` measure the optimised hot paths
(`repro.sim.core`, `repro.net.network.send`, the fast linearizability
checker) against the implementations this repository shipped *before* the
hot-path overhaul.  The reference code below preserves the old designs --
an ordered-``dataclass`` event pushed straight onto one heap, a fresh
closure and label string per delivered message, every fault-hook loop
executed for every send -- behind the current public API, so a whole
deployment can be rebuilt on top of them and driven by the unchanged
protocol stack.

Two deliberate deviations from the historical code, both required to stay
API-compatible with today's callers and both *favouring* the reference in
comparisons:

* ``schedule``/``call_soon`` accept the new ``args`` pre-binding parameter
  (the coroutine runner now uses it); the reference still allocates an
  ordered dataclass event per call.
* ``trace_enabled`` exists (the network checks it before building labels);
  the reference network path below nevertheless builds its label eagerly,
  as the old code did.

The linearizability reference needs no copy: the Wing-Gong search is kept
in-tree as :func:`repro.spec.linearizability.check_linearizability_reference`
because it doubles as the fallback decision procedure.
"""

from __future__ import annotations

import heapq
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import repro.core.deployment as _deployment
from repro.common.errors import SimulationError
from repro.common.ids import ProcessId
from repro.net.message import Message
from repro.net.network import Network


@contextmanager
def reference_substrate():
    """Build deployments on the pre-overhaul simulator and network.

    Swaps the classes the deployment builder instantiates, so everything
    created inside the ``with`` block -- including `run_scenario` runs --
    exercises the reference hot paths.  Executions stay byte-identical to
    the optimised stack (same RNG draw order, same event ordering), which
    the benchmarks assert via ``History.signature()``.
    """
    originals = (_deployment.Simulator, _deployment.Network)
    _deployment.Simulator = ReferenceSimulator
    _deployment.Network = ReferenceNetwork
    try:
        yield
    finally:
        _deployment.Simulator, _deployment.Network = originals


@dataclass(order=True)
class ReferenceEvent:
    """The pre-overhaul event: ordering via dataclass rich comparisons."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class ReferenceSimulator:
    """The pre-overhaul simulator: one heap of dataclass events, no FIFO lane,
    no cancelled-event accounting, ``step()`` called per event by ``run()``."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._now: float = 0.0
        self._queue: List[ReferenceEvent] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        self._trace: Optional[List[str]] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def trace_enabled(self) -> bool:
        return self._trace is not None

    def schedule(self, delay: float, callback: Callable[..., None], label: str = "",
                 args: tuple = ()) -> ReferenceEvent:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, callback, label=label, args=args)

    def schedule_at(self, time: float, callback: Callable[..., None], label: str = "",
                    args: tuple = ()) -> ReferenceEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at time {time} before the current time {self._now}"
            )
        event = ReferenceEvent(time=time, seq=self._seq, callback=callback,
                               args=args, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[..., None], label: str = "",
                  args: tuple = ()) -> ReferenceEvent:
        return self.schedule(0.0, callback, label=label, args=args)

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self._trace is not None and event.label:
                self._trace.append(f"{event.time:.3f} {event.label}")
            if event.args:
                event.callback(*event.args)
            else:
                event.callback()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> None:
        self._running = True
        processed = 0
        try:
            while self.step():
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"simulation did not quiesce within {max_events} events; "
                        "a protocol is likely livelocked"
                    )
        finally:
            self._running = False

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        if time < self._now:
            raise SimulationError(f"cannot run until {time}, already at {self._now}")
        processed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.time > time:
                break
            self.step()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events before time {time}"
                )
        self._now = time

    def run_until_complete(self, future, max_events: int = 10_000_000):
        processed = 0
        while not future.done():
            if not self.step():
                raise SimulationError(
                    "event queue drained before the awaited future resolved; "
                    "the operation cannot make progress (missing quorum or crashed client?)"
                )
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"future did not resolve within {max_events} events; likely livelock"
                )
        return future.result()

    def enable_trace(self) -> None:
        self._trace = []

    @property
    def trace(self) -> List[str]:
        return list(self._trace or [])

    def uniform(self, low: float, high: float) -> float:
        if high < low:
            raise SimulationError(f"invalid uniform range [{low}, {high}]")
        if low == high:
            return low
        return self.rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        if mean <= 0:
            raise SimulationError("exponential mean must be positive")
        return self.rng.expovariate(1.0 / mean)

    def choice(self, seq):
        return self.rng.choice(list(seq))

    def shuffle(self, seq: list) -> list:
        items = list(seq)
        self.rng.shuffle(items)
        return items


class ReferenceNetwork(Network):
    """The pre-overhaul ``send``: hook loops always run, a fresh closure and
    label string are allocated per delivered message, and duplicated copies
    are not charged to the traffic accountant (the old accounting bug --
    irrelevant for timing, preserved for faithfulness)."""

    def send(self, src: ProcessId, dest: ProcessId, message: Message) -> None:
        self.messages_sent += 1
        self.stats.record(src, dest, message.kind, message.data_bytes, message.metadata_bytes)
        for rule in self._drop_filters:
            if rule(src, dest, message):
                self.messages_dropped += 1
                return
        extra_copies = 0
        for duplicator in self._duplicators:
            extra_copies += max(0, int(duplicator(src, dest, message)))
        dest_process = self.processes.get(dest)
        sent_while_down = dest_process is not None and dest_process.crashed
        for copy_index in range(1 + extra_copies):
            delay = self.latency.sample(self.sim, src, dest)
            for adjuster in self._delay_adjusters:
                delay = adjuster(src, dest, message, delay)
            delay = max(0.0, delay)
            for observer in self._observers:
                observer(src, dest, message, self.sim.now + delay)
            if copy_index:
                self.messages_duplicated += 1
            self.sim.schedule(delay,
                              lambda: self._deliver(src, dest, message, sent_while_down),
                              label=f"deliver {message.kind} {src}->{dest}")
