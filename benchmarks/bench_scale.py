"""Scale benchmark: 10^6 keyed operations under chaos, verified online.

Drives one million operations (``--quick``: one hundred thousand) through a
three-shard ABD store -- duplication, reordering and two tolerated server
crashes running in the background -- with the history in **streaming** mode:
completed operations are checked online per key and folded away, so memory
stays O(open window) no matter how long the run is.  The committed baseline
``BENCH_SCALE.json`` records throughput and peak RSS; ``--check`` gates CI
against it:

* calibrated throughput must stay above ``REGRESSION_TOLERANCE`` (the same
  >30% regression gate, probe-scaled across hosts, as ``perf_report.py``);
* peak RSS may exceed the baseline by at most ``RSS_DELTA_LIMIT_MB`` -- a
  quick run is 10x smaller than the committed full run, so this is exactly
  the streaming claim: memory must not scale with history length;
* a small streaming-vs-batch sub-run must agree on verdict and signature
  hash byte-for-byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # regenerate
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # CI-sized run
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --check
        # measure, compare against the committed BENCH_SCALE.json and exit
        # non-zero on regression (the baseline file is left untouched)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import resource
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from perf_report import REGRESSION_TOLERANCE, calibration_probe  # noqa: E402

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"

#: Total operations of the full / quick scale run.
SCALE_OPS = 1_000_000
QUICK_OPS = 100_000

#: Operations of the streaming-vs-batch equivalence sub-run.
EQUIVALENCE_OPS = 8_000

#: Peak RSS may exceed the committed baseline by at most this many MB.
RSS_DELTA_LIMIT_MB = 50.0

#: Simulated time one closed-loop client step takes on the bench store
#: (measured; only used to aim the background-chaos window at ~3/4 of the
#: run, so overestimating merely shortens chaos coverage a little).
SIM_TIME_PER_STEP = 18.0

#: Each client step is one batched multi_put/multi_get over this many keys.
BATCH_SIZE = 2

#: writers + readers driving the store.
CLIENTS = 8


def peak_rss_mb() -> float:
    """Lifetime peak resident set size of this process, in MB."""
    # ru_maxrss is KB on Linux, bytes on macOS.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return peak / 1024.0


def scale_scenario(total_ops: int, fault_rate: float = 0.0):
    """The bench scenario: 3x ABD-5 store, 4 writers + 4 readers, chaos.

    Built directly (not registered) so the registry keeps only the curated
    scenarios; every parameter derives from ``(total_ops, fault_rate)``
    alone, making the run a pure function of (total_ops, fault_rate, seed).

    ``fault_rate > 0`` superimposes continuous stochastic packet loss over
    the same window as the scripted chaos and arms client retry/backoff;
    ``0.0`` -- the default -- builds a byte-identical run to builds without
    the knob (no retry machinery, no stochastic entries), so the committed
    baseline's determinism gate stays valid.
    """
    from repro.chaos.faults import Crash, Drop, Duplicate, Reorder
    from repro.chaos.schedule import At, During, Schedule, Stochastic
    from repro.net.latency import UniformLatency
    from repro.sim.process import RetryPolicy
    from repro.store import ShardSpec, StoreDeployment, StoreSpec
    from repro.workloads.generator import WorkloadSpec
    from repro.workloads.scenarios import ChaosScenario

    steps_per_client = total_ops // (CLIENTS * BATCH_SIZE)
    horizon = steps_per_client * SIM_TIME_PER_STEP * 0.75
    retry = RetryPolicy(attempts=9, timeout=30.0, base_delay=2.0,
                        multiplier=2.0, jitter=0.5) if fault_rate else None
    entries = [
        During(50.0, horizon, Duplicate(0.05), Reorder(0.5)),
        At(200.0, Crash("s3")),
        At(round(horizon / 2), Crash("s8")),
    ]
    if fault_rate:
        entries.append(Stochastic(50.0, horizon, Drop(1.0), rate=fault_rate))
    return ChaosScenario(
        name=f"bench_scale_store_{total_ops}",
        description=("three ABD-5 shards, duplication + reordering + two "
                     "tolerated crashes, closed-loop keyed traffic"),
        dap="store", faults=("crash", "duplicate", "reorder"),
        deployment=lambda seed: StoreDeployment(StoreSpec(
            shards=(ShardSpec(dap="abd", num_servers=5),
                    ShardSpec(dap="abd", num_servers=5),
                    ShardSpec(dap="abd", num_servers=5)),
            num_writers=CLIENTS // 2, num_readers=CLIENTS // 2,
            latency=UniformLatency(1.0, 2.0), seed=seed, retry=retry)),
        # s3 is in shard 0, s8 in shard 1; ABD-5 tolerates two lost servers,
        # so both shards keep quorums and the run must stay live.
        schedule=lambda d: Schedule(entries),
        workload=WorkloadSpec(
            operations_per_writer=steps_per_client,
            operations_per_reader=steps_per_client,
            value_size=64, think_time=0.0, num_keys=256,
            batch_size=BATCH_SIZE,
            # ~50 simulator events per operation; 120/op leaves headroom
            # while still catching a genuine livelock.
            max_events=max(10_000_000, total_ops * 120)),
        fault_rate=fault_rate,
    )


def run_scale(total_ops: int, seed: int = 0, fault_rate: float = 0.0) -> dict:
    """One streaming scale run; raises if verification fails."""
    from repro.workloads.scenarios import run_scenario_instance

    scenario = scale_scenario(total_ops, fault_rate=fault_rate)
    start = time.perf_counter()
    result = run_scenario_instance(scenario, seed=seed, streaming=True)
    failure, checker_method = result.check()
    wall = time.perf_counter() - start
    if failure is not None:
        raise AssertionError(f"scale run failed verification: {failure}")
    stream = result.history.stream
    ops = stream.completed_operations
    clients = result.deployment.writers + result.deployment.readers
    return {
        "scenario": scenario.description,
        "total_ops": ops,
        "fault_rate": fault_rate,
        "retries": sum(client.retries for client in clients),
        "wall_clock_sec": round(wall, 2),
        "ops_per_sec": round(ops / wall),
        "events": result.deployment.sim.events_processed,
        "messages": result.deployment.network.messages_sent,
        "checker_method": checker_method,
        "open_window_peak": stream.open_window_peak,
        "folded_records": stream.folded_records,
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "signature_hash": result.signature_hash(),
    }


def equivalence_check(total_ops: int = EQUIVALENCE_OPS) -> dict:
    """Streaming and batch must agree on verdict and signature bytes."""
    from repro.workloads.scenarios import run_scenario_instance

    scenario = scale_scenario(total_ops)
    streaming = run_scenario_instance(scenario, seed=0, streaming=True)
    s_failure, s_method = streaming.check()
    s_hash = streaming.signature_hash()
    batch = run_scenario_instance(scenario, seed=0)
    b_failure, b_method = batch.check()
    b_hash = batch.signature_hash()
    if s_failure != b_failure or s_hash != b_hash:
        raise AssertionError(
            f"streaming/batch divergence at {total_ops} ops: "
            f"verdicts {s_failure!r} vs {b_failure!r}, "
            f"hashes {s_hash[:16]} vs {b_hash[:16]}")
    return {
        "total_ops": total_ops,
        "verdict": s_failure,
        "methods": [s_method, b_method],
        "signature_hash": s_hash,
        "agree": True,
    }


def build_report(quick: bool, fault_rate: float = 0.0) -> dict:
    # The tiny equivalence sub-run goes first so the scale run dominates
    # the process's lifetime peak RSS.
    equivalence = equivalence_check()
    report = {
        "schema": 1,
        "generated_by": "benchmarks/bench_scale.py",
        "quick": quick,
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(calibration_probe()),
        "equivalence": equivalence,
        "scale": run_scale(QUICK_OPS if quick else SCALE_OPS,
                           fault_rate=fault_rate),
    }
    return report


def check_regression(report: dict, baseline: dict) -> int:
    """Gate throughput, memory and determinism against the baseline."""
    failures = 0
    base = baseline["scale"]
    scale = report["scale"]

    chaotic = bool(scale.get("fault_rate"))
    base_probe = baseline.get("calibration_ops_per_sec") or 0
    probe = report["calibration_ops_per_sec"]
    host_scale = probe / base_probe if base_probe else 1.0
    expected = base["ops_per_sec"] * host_scale
    ratio = scale["ops_per_sec"] / expected
    print(f"baseline ops/sec:   {base['ops_per_sec']:>10,} at "
          f"{base['total_ops']:,} ops (probe {base_probe:,.0f}/s)")
    print(f"this host's probe:  {probe:>10,.0f}/s (scale x{host_scale:.2f})")
    print(f"measured ops/sec:   {scale['ops_per_sec']:>10,} at "
          f"{scale['total_ops']:,} ops ({ratio:.0%} of calibrated expected)")
    if chaotic:
        # The committed baseline is a quiet run: under a nonzero
        # --fault-rate, retries legitimately cost throughput and perturb
        # the event sequence, so only the memory gate is comparable.
        print(f"fault_rate {scale['fault_rate']:g} "
              f"({scale['retries']} retries): throughput and determinism "
              "gates skipped against the quiet baseline")
    elif ratio < REGRESSION_TOLERANCE:
        print(f"THROUGHPUT REGRESSION: below the {REGRESSION_TOLERANCE:.0%} "
              "floor")
        failures += 1

    delta = scale["peak_rss_mb"] - base["peak_rss_mb"]
    print(f"peak RSS:           {scale['peak_rss_mb']:>10.1f} MB "
          f"(baseline {base['peak_rss_mb']:.1f} MB, delta {delta:+.1f} MB, "
          f"limit +{RSS_DELTA_LIMIT_MB:.0f} MB)")
    if delta > RSS_DELTA_LIMIT_MB:
        print("MEMORY REGRESSION: streaming verification must keep RSS flat "
              "regardless of run length")
        failures += 1

    if not chaotic and scale["total_ops"] == base["total_ops"] \
            and scale["signature_hash"] != base["signature_hash"]:
        print(f"DETERMINISM REGRESSION: signature "
              f"{scale['signature_hash'][:16]}... != baseline "
              f"{base['signature_hash'][:16]}...")
        failures += 1

    if failures == 0:
        print("OK: within tolerance")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help=f"CI-sized run ({QUICK_OPS:,} operations instead "
                             f"of {SCALE_OPS:,})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH_SCALE.json "
                             "and exit non-zero on throughput/memory/"
                             "determinism regression (the committed baseline "
                             "is never rewritten in this mode)")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="superimpose continuous stochastic packet loss "
                             "at this per-message rate and arm client "
                             "retry/backoff (default 0.0: byte-identical to "
                             "builds without the knob; with --check, a "
                             "nonzero rate keeps only the memory gate)")
    parser.add_argument("--output", default=None,
                        help="where to write the report (default: the "
                             "repo-root BENCH_SCALE.json, unless --check is "
                             "given)")
    args = parser.parse_args(argv)

    if not 0.0 <= args.fault_rate <= 1.0:
        parser.error(f"--fault-rate wants 0.0..1.0, got {args.fault_rate}")
    if args.fault_rate and args.output is None and not args.check:
        parser.error("refusing to overwrite the committed quiet baseline "
                     "with a chaotic run; pass --output or --check")

    report = build_report(quick=args.quick, fault_rate=args.fault_rate)

    out = None
    if args.output is not None:
        out = pathlib.Path(args.output)
    elif not args.check:
        out = BASELINE_PATH
    if out is not None:
        out.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {out}")
    print(json.dumps(report["scale"], indent=1))

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no committed baseline at {BASELINE_PATH}; nothing to check")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        return check_regression(report, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
