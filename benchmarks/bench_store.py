"""Store scale-out: shard fan-out and batched-operation pipelining.

Two tables quantify why the sharded store is the scaling layer:

* **Shard scaling** -- the same 20-server fleet carved into 1, 2 or 4 ABD
  shards under a fixed keyed workload: per-operation message cost and
  quorum wait drop as each round addresses one shard's slice instead of
  the whole fleet (majority of 5 vs. majority of 20).
* **Batch pipelining** -- sequential single-key reads vs. one ``multi_get``
  over the same keys: the batch overlaps its per-key quorum rounds, so
  simulated latency approaches one operation instead of ``b`` chained ones.

Every run's keyed history is verified per key before its row is reported.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.net.latency import FixedLatency, UniformLatency
from repro.spec.linearizability import check_linearizability_per_key
from repro.store import ShardSpec, StoreDeployment, StoreSpec
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec


def _verified(store: StoreDeployment) -> None:
    result = check_linearizability_per_key(store.history)
    assert result.ok, result.reason


def run_shard_scaling(num_shards: int, total_servers: int = 20,
                      num_keys: int = 24, ops: int = 4, seed: int = 0):
    """Drive the same keyed workload over a fixed fleet carved into shards."""
    per_shard = total_servers // num_shards
    store = StoreDeployment(StoreSpec(
        shards=tuple(ShardSpec(dap="abd", num_servers=per_shard)
                     for _ in range(num_shards)),
        num_writers=2, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed))
    spec = WorkloadSpec(operations_per_writer=ops, operations_per_reader=ops,
                        value_size=256, num_keys=num_keys, seed=seed)
    result = ClosedLoopDriver(store, spec).run()
    assert result.errors == []
    _verified(store)
    return store, result


def run_batch_comparison(batch: int, seed: int = 0):
    """Sequential reads vs. one pipelined ``multi_get`` over ``batch`` keys."""
    def build() -> StoreDeployment:
        return StoreDeployment(StoreSpec(
            shards=(ShardSpec(dap="abd", num_servers=5),
                    ShardSpec(dap="treas", num_servers=6, k=4)),
            latency=FixedLatency(1.0), seed=seed))

    keys = [f"k{i}" for i in range(batch)]

    sequential = build()
    writer = sequential.writers[0]
    sequential.multi_put({key: writer.next_value(128) for key in keys})
    start = sequential.sim.now
    for key in keys:
        sequential.get(key)
    sequential_time = sequential.sim.now - start

    pipelined = build()
    writer = pipelined.writers[0]
    pipelined.multi_put({key: writer.next_value(128) for key in keys})
    start = pipelined.sim.now
    pipelined.multi_get(keys)
    pipelined_time = pipelined.sim.now - start

    _verified(sequential)
    _verified(pipelined)
    return sequential_time, pipelined_time


@pytest.mark.experiment("E11")
def test_store_shard_scaling(benchmark, quick):
    """Message cost and latency of one workload across shard counts."""
    shard_counts = (1, 4) if quick else (1, 2, 4)
    ops = 3 if quick else 4
    table = Table(
        "E11: 20-server fleet carved into shards, fixed keyed workload "
        "(24 keys, uniform)",
        ["shards", "servers/shard", "operations", "messages/op",
         "sim makespan", "mean read", "mean write"],
    )
    rows = {}
    for count in shard_counts:
        store, result = run_shard_scaling(count, ops=ops)
        messages_per_op = store.network.messages_sent / max(1, result.total_operations)
        rows[count] = (messages_per_op, result.mean_read_latency)
        table.add_row(count, 20 // count, result.total_operations,
                      messages_per_op, result.duration,
                      result.mean_read_latency, result.mean_write_latency)
    table.print()
    # The sharding claim: same fleet, smaller per-shard quorums.  Four
    # 5-server shards must cut per-op message cost well below the single
    # 20-server configuration (fan-out 5 vs. 20 per round).  Latency stays
    # roughly flat -- a quorum wait tracks the quorum *fraction*, not the
    # fleet size -- so the win is communication cost, i.e. capacity.
    finest = max(shard_counts)
    assert rows[finest][0] < rows[1][0] * 0.5, rows

    benchmark(lambda: run_shard_scaling(2, ops=2, seed=1))


@pytest.mark.experiment("E12")
def test_store_batch_pipelining(benchmark, quick):
    """Pipelined ``multi_get`` vs. chained single-key reads."""
    batches = (4, 8) if quick else (4, 8, 16)
    table = Table(
        "E12: sequential reads vs. pipelined multi_get (FixedLatency(1))",
        ["batch", "sequential sim-time", "multi_get sim-time", "speedup"],
    )
    for batch in batches:
        sequential_time, pipelined_time = run_batch_comparison(batch)
        table.add_row(batch, sequential_time, pipelined_time,
                      sequential_time / pipelined_time)
        # The pipelined batch must beat b chained operations clearly; with
        # fixed latency its makespan is within a small constant of one op.
        assert pipelined_time * 2 < sequential_time
    table.print()

    benchmark(lambda: run_batch_comparison(8, seed=1))


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
