"""E10 (ablation) -- the garbage-collection / concurrency parameter δ.

δ is TREAS's central design knob: servers keep coded elements for the δ+1
highest tags, which (Theorem 3) costs `(δ+1)·n/k` storage and up to
`(δ+2)·n/k` read traffic, and (Theorem 9) guarantees read liveness for up to
δ writes concurrent with the read.  This ablation sweeps δ and reports, for a
fixed `[6, 4]` configuration under a concurrent workload:

* the measured storage footprint;
* the measured per-read data traffic;
* whether any read failed (liveness) when the writer concurrency exceeds δ.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import treas_read_cost, treas_storage_cost
from repro.analysis.report import Table
from repro.common.values import Value
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment
from repro.workloads.generator import ClosedLoopDriver, WorkloadSpec

N, K = 6, 4
VALUE_SIZE = 4096


def run_with_delta(delta: int, writers: int = 3, seed: int = 0):
    deployment = StaticRegisterDeployment.treas(
        num_servers=N, k=K, delta=delta, num_writers=writers, num_readers=2,
        latency=UniformLatency(1.0, 2.0), seed=seed)
    spec = WorkloadSpec(operations_per_writer=4, operations_per_reader=4,
                        value_size=VALUE_SIZE)
    result = ClosedLoopDriver(deployment, spec).run()
    storage_units = deployment.total_storage_data_bytes() / VALUE_SIZE
    read_traffic = deployment.stats.by_kind("TREAS-LIST").data_bytes
    reads = len(result.read_latencies)
    per_read_units = (read_traffic / reads / VALUE_SIZE) if reads else 0.0
    return result, storage_units, per_read_units


@pytest.mark.experiment("E10")
def test_delta_ablation(benchmark):
    table = Table(
        f"E10: delta ablation on a [{N}, {K}] TREAS register (3 writers, 2 readers)",
        ["delta", "storage (units)", "storage bound", "read list traffic (units)",
         "read bound", "read errors"],
    )
    for delta in (0, 1, 2, 4, 8):
        result, storage_units, per_read_units = run_with_delta(delta)
        table.add_row(delta, storage_units, treas_storage_cost(N, K, delta),
                      per_read_units, treas_read_cost(N, K, delta),
                      len(result.errors))
        # Storage never exceeds the Theorem 3 bound.
        assert storage_units <= treas_storage_cost(N, K, delta) + 1e-6
        # With delta >= number of concurrent writers, no read may fail.
        if delta >= 3:
            assert result.errors == []
    table.print()

    benchmark(lambda: run_with_delta(2))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
