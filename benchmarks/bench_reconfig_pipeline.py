"""E5 -- Reconfiguration pipeline latency (Lemma 57 / Fig. 2).

Installs ``k`` configurations back-to-back and compares the total elapsed
simulated time with the analytic lower bound
``4d·Σ_{i=1..k} i + k(T(CN) + 2d)``.  The sweep varies both ``k`` and the
consensus delay ``T(CN)``.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import reconfig_pipeline_lower_bound
from repro.analysis.report import Table
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import FixedLatency

DELAY = 1.0


def install_chain(k: int, consensus_delay: float, seed: int = 0) -> float:
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="treas", delta=2, num_writers=1, num_readers=1,
        num_reconfigurers=1, latency=FixedLatency(DELAY), seed=seed,
        consensus_delay=consensus_delay))
    start = deployment.sim.now
    for _ in range(k):
        configuration = deployment.make_configuration(dap="treas", fresh_servers=5, k=4)
        deployment.reconfig(configuration, 0)
    return deployment.sim.now - start


@pytest.mark.experiment("E5")
def test_reconfiguration_pipeline_latency(benchmark):
    table = Table(
        f"E5: time to install k back-to-back configurations (d=D={DELAY})",
        ["k", "T(CN)", "measured", "lower bound 4d*sum(i)+k(T(CN)+2d)"],
    )
    for consensus_delay in (0.0, 5.0, 20.0):
        for k in (1, 2, 4, 6):
            measured = install_chain(k, consensus_delay)
            bound = reconfig_pipeline_lower_bound(DELAY, consensus_delay, k)
            table.add_row(k, consensus_delay, measured, bound)
            assert measured >= bound
    table.print()

    benchmark(lambda: install_chain(2, 5.0))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
