"""E7 -- Reconfiguration state transfer: baseline ARES vs ARES-TREAS (Section 5, Fig. 3).

Measures, for a sweep of object sizes, the object-data bytes that flow
through the reconfiguration client during one reconfiguration.  Baseline
ARES moves the whole object through the client (get-data + put-data);
ARES-TREAS forwards coded elements directly between the server sets, so the
client moves only metadata.  Total network bytes are also reported: the
direct path pays server-to-server fragment traffic instead.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.common.values import Value
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import UniformLatency

SIZES = [1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]


def run_reconfiguration(direct: bool, value_size: int, seed: int = 0):
    deployment = AresDeployment(DeploymentSpec(
        num_servers=6, initial_dap="treas", delta=2, num_writers=1, num_readers=1,
        num_reconfigurers=1, latency=UniformLatency(1.0, 2.0), seed=seed,
        direct_state_transfer=direct))
    deployment.write(Value.of_size(value_size, label="payload"), 0)
    reconfigurer = deployment.reconfigurers[0]
    stats = deployment.stats
    client_before = stats.to_and_from(reconfigurer.pid).data_bytes
    total_before = stats.global_record.data_bytes
    configuration = deployment.make_configuration(dap="treas", fresh_servers=9, k=5)
    deployment.reconfig(configuration, 0)
    client_bytes = stats.to_and_from(reconfigurer.pid).data_bytes - client_before
    total_bytes = stats.global_record.data_bytes - total_before
    latency = deployment.history.reconfigs()[-1].latency
    # The value must be readable from the new configuration afterwards.
    assert deployment.read(0).label == "payload"
    return client_bytes, total_bytes, latency


@pytest.mark.experiment("E7")
def test_state_transfer_client_bottleneck(benchmark):
    table = Table(
        "E7: object bytes through the reconfiguration client during one reconfiguration",
        ["object size", "baseline client B", "direct client B", "baseline total B",
         "direct total B", "baseline latency", "direct latency"],
    )
    for size in SIZES:
        baseline = run_reconfiguration(direct=False, value_size=size)
        direct = run_reconfiguration(direct=True, value_size=size)
        table.add_row(size, baseline[0], direct[0], baseline[1], direct[1],
                      baseline[2], direct[2])
        # The paper's claim: the client stops being a data conduit.
        assert direct[0] == 0
        assert baseline[0] >= size
    table.print()

    benchmark(lambda: run_reconfiguration(direct=True, value_size=1 << 14))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
