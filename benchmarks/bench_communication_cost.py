"""E2 -- Communication cost per operation (Theorem 3(ii)/(iii), Lemmas 39-40).

Measures the object-data bytes on the wire for one write and one read, in
TREAS and ABD configurations, and prints them next to the analytic costs
``n/k`` / ``(δ+2)·n/k`` (TREAS) and ``n`` / ``2n`` (ABD), normalised by the
value size.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import (
    abd_read_cost,
    abd_write_cost,
    measure_operation_traffic,
    treas_read_cost,
    treas_write_cost,
)
from repro.analysis.report import Table
from repro.common.values import Value
from repro.net.latency import FixedLatency
from repro.registers.static import StaticRegisterDeployment

VALUE_SIZE = 8192


def measure_treas(n: int, k: int, delta: int):
    deployment = StaticRegisterDeployment.treas(num_servers=n, k=k, delta=delta,
                                                num_writers=1, num_readers=1,
                                                latency=FixedLatency(1.0))
    write_cost = measure_operation_traffic(
        deployment, deployment.writers[0].pid,
        lambda: deployment.write(Value.of_size(VALUE_SIZE, label="x"), 0),
        value_size=VALUE_SIZE, name="write")
    read_cost = measure_operation_traffic(
        deployment, deployment.readers[0].pid,
        lambda: deployment.read(0), value_size=VALUE_SIZE, name="read")
    return write_cost.normalised, read_cost.normalised


def measure_abd(n: int):
    deployment = StaticRegisterDeployment.abd(num_servers=n, num_writers=1, num_readers=1,
                                              latency=FixedLatency(1.0))
    write_cost = measure_operation_traffic(
        deployment, deployment.writers[0].pid,
        lambda: deployment.write(Value.of_size(VALUE_SIZE, label="x"), 0),
        value_size=VALUE_SIZE, name="write")
    read_cost = measure_operation_traffic(
        deployment, deployment.readers[0].pid,
        lambda: deployment.read(0), value_size=VALUE_SIZE, name="read")
    return write_cost.normalised, read_cost.normalised


@pytest.mark.experiment("E2")
def test_communication_cost_table(benchmark):
    delta = 2
    table = Table(
        "E2: per-operation communication cost (units of value size)",
        ["n", "k", "treas write", "bound n/k", "treas read", "bound (d+2)n/k",
         "abd write", "bound n", "abd read", "bound 2n"],
    )
    for n in (3, 6, 9, 12):
        k = -(-2 * n // 3)
        treas_write, treas_read = measure_treas(n, k, delta)
        abd_write, abd_read = measure_abd(n)
        table.add_row(n, k, treas_write, treas_write_cost(n, k),
                      treas_read, treas_read_cost(n, k, delta),
                      abd_write, abd_write_cost(n), abd_read, abd_read_cost(n))
    table.print()

    benchmark(lambda: measure_treas(6, 4, delta))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
