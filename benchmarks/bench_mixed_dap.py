"""E8 -- DAP adaptivity (Remark 22): mixed ABD/TREAS configuration chains.

ARES lets every configuration choose its own DAP implementation.  This bench
alternates TREAS- and ABD-backed configurations in one execution, keeps a
client workload running throughout, verifies atomicity of the combined
history and reports the per-configuration storage footprint together with
mean client latencies for each chain.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.spec.linearizability import check_linearizability
from repro.workloads.scenarios import reconfiguration_storm

CHAINS = {
    "treas-only": False,
    "alternating treas/abd": True,
}


def run_chain(alternate: bool, num_reconfigs: int = 3, seed: int = 0):
    deployment, result = reconfiguration_storm(
        num_reconfigs=num_reconfigs, value_size=2048,
        direct_state_transfer=False, seed=seed)
    assert result.errors == []
    assert check_linearizability(deployment.history).ok
    storage = deployment.storage_by_configuration()
    kinds = {cfg.cfg_id: cfg.dap.value for cfg in deployment.directory}
    return result, storage, kinds


@pytest.mark.experiment("E8")
def test_mixed_dap_chain(benchmark):
    result, storage, kinds = run_chain(alternate=True)
    table = Table(
        "E8: per-configuration storage after an alternating TREAS/ABD reconfiguration chain",
        ["configuration", "dap", "object bytes stored"],
    )
    for cfg_id in sorted(storage, key=lambda c: c.name):
        table.add_row(str(cfg_id), kinds.get(cfg_id, "?"), storage[cfg_id])
    table.print()

    summary = Table(
        "E8: client latency while the chain was being installed",
        ["mean write latency", "mean read latency", "operations"],
    )
    summary.add_row(result.mean_write_latency, result.mean_read_latency,
                    result.total_operations)
    summary.print()

    benchmark(lambda: run_chain(alternate=True, num_reconfigs=2, seed=1))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
