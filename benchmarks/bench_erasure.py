"""E9 -- Erasure-coding substrate microbenchmark.

Reed-Solomon encode and decode throughput for the ``[n, k]`` parameters used
throughout the experiments.  This is the sanity baseline for E3: the paper's
deployment uses a C erasure-coding library (liberasurecode), so absolute
throughput differs, but the relative cost of growing ``n`` at fixed rate
``k/n`` is the same shape.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.common.values import Value
from repro.erasure.rs import ReedSolomonCode

PAYLOAD = 1 << 16  # 64 KiB
PARAMETERS = [(3, 2), (6, 4), (9, 6), (12, 8)]


def encode_decode_once(n: int, k: int, size: int = PAYLOAD):
    code = ReedSolomonCode(n, k)
    value = Value.of_size(size, label="bench")
    elements = code.encode(value)
    decoded = code.decode(elements[n - k:])
    assert decoded.size == size
    return elements


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("n,k", PARAMETERS, ids=[f"rs-{n}-{k}" for n, k in PARAMETERS])
def test_reed_solomon_encode_decode(benchmark, n, k):
    benchmark(lambda: encode_decode_once(n, k))


@pytest.mark.experiment("E9")
def test_fragment_size_table(benchmark):
    table = Table(
        "E9: fragment size and storage blow-up per [n, k] (64 KiB object)",
        ["n", "k", "fragment bytes", "total stored bytes", "blow-up n/k"],
    )
    for n, k in PARAMETERS:
        code = ReedSolomonCode(n, k)
        fragment = code.fragment_size(PAYLOAD)
        table.add_row(n, k, fragment, fragment * n, n / k)
    table.print()
    benchmark(lambda: ReedSolomonCode(6, 4).encode(Value.of_size(PAYLOAD)))
