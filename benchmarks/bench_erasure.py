"""E9 -- Erasure-coding substrate microbenchmark.

Reed-Solomon encode and decode throughput for the ``[n, k]`` parameters used
throughout the experiments, plus the measured speedup of the fully
vectorised GF(2^8) matrix multiply over the per-row/per-col reference
implementation.  This is the sanity baseline for E3: the paper's deployment
uses a C erasure-coding library (liberasurecode), so absolute throughput
differs, but the relative cost of growing ``n`` at fixed rate ``k/n`` is
the same shape.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.common.values import Value
from repro.erasure.gf256 import gf_matmul_vec, gf_matmul_vec_reference
from repro.erasure.matrix import matrix_invert, systematic_generator
from repro.erasure.rs import ReedSolomonCode, decode_cache_clear, decode_cache_info

PAYLOAD = 1 << 16  # 64 KiB
QUICK_PAYLOAD = 1 << 12  # 4 KiB
PARAMETERS = [(3, 2), (6, 4), (9, 6), (12, 8)]
#: Value sizes for the throughput-by-size sweep: 1 KiB to 1 MiB.
THROUGHPUT_SIZES = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
QUICK_THROUGHPUT_SIZES = [1 << 10, 1 << 14]


def encode_decode_once(n: int, k: int, size: int = PAYLOAD):
    code = ReedSolomonCode(n, k)
    value = Value.of_size(size, label="bench")
    elements = code.encode(value)
    decoded = code.decode(elements[n - k:])
    assert decoded.size == size
    return elements


@pytest.mark.experiment("E9")
@pytest.mark.parametrize("n,k", PARAMETERS, ids=[f"rs-{n}-{k}" for n, k in PARAMETERS])
def test_reed_solomon_encode_decode(benchmark, quick, n, k):
    if quick and (n, k) != (6, 4):
        pytest.skip("--quick runs only the representative [6, 4] code")
    size = QUICK_PAYLOAD if quick else PAYLOAD
    benchmark(lambda: encode_decode_once(n, k, size=size))


@pytest.mark.experiment("E9")
def test_fragment_size_table(benchmark, quick):
    table = Table(
        "E9: fragment size and storage blow-up per [n, k] (64 KiB object)",
        ["n", "k", "fragment bytes", "total stored bytes", "blow-up n/k"],
    )
    for n, k in PARAMETERS:
        code = ReedSolomonCode(n, k)
        fragment = code.fragment_size(PAYLOAD)
        table.add_row(n, k, fragment, fragment * n, n / k)
    table.print()
    size = QUICK_PAYLOAD if quick else PAYLOAD
    benchmark(lambda: ReedSolomonCode(6, 4).encode(Value.of_size(size)))


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.experiment("E9")
def test_gf_matmul_vectorization_speedup(benchmark, quick):
    """The single-expression log/exp-table multiply beats the scalar loop.

    Results must match the reference byte-for-byte; the table reports the
    measured per-call times and the speedup factor for each ``[n, k]``.
    """
    rng = np.random.default_rng(0)
    repeats = 3 if quick else 10
    payload = QUICK_PAYLOAD if quick else PAYLOAD
    table = Table(
        "E9: vectorised GF(2^8) matmul vs per-row/per-col reference "
        f"({payload // 1024} KiB object)",
        ["n", "k", "path", "reference ms", "vectorised ms", "speedup"],
    )
    speedups = []
    for n, k in PARAMETERS:
        generator = systematic_generator(n, k)
        # The encode path (identity + parity rows) and the worst-case decode
        # path (dense inverse of the parity-only submatrix).
        paths = [("encode", generator),
                 ("decode", matrix_invert(generator[n - k:n, :]))]
        shard_len = (payload + k - 1) // k
        shards = [rng.integers(0, 256, size=shard_len).astype(np.uint8)
                  for _ in range(k)]
        for path, m in paths:
            expected = gf_matmul_vec_reference(m, shards)
            actual = gf_matmul_vec(m, shards)
            assert all(np.array_equal(a, b) for a, b in zip(actual, expected))
            t_ref = _time(lambda: gf_matmul_vec_reference(m, shards), repeats)
            t_vec = _time(lambda: gf_matmul_vec(m, shards), repeats)
            speedups.append(t_ref / t_vec)
            table.add_row(n, k, path, round(t_ref * 1e3, 3), round(t_vec * 1e3, 3),
                          round(t_ref / t_vec, 2))
    table.print()
    # The win grows with n*k; require a clear improvement on the largest
    # code, but only in the full run: --quick times sub-millisecond calls
    # best-of-3 where shared-runner jitter could fail the bound spuriously.
    if not quick:
        assert max(speedups) > 1.2, f"vectorisation shows no speedup: {speedups}"
    bench_generator = systematic_generator(12, 8)
    bench_shards = [rng.integers(0, 256, size=payload // 8).astype(np.uint8)
                    for _ in range(8)]
    benchmark(lambda: gf_matmul_vec(bench_generator, bench_shards))


@pytest.mark.experiment("E9")
def test_throughput_across_value_sizes(benchmark, quick):
    """Encode/decode throughput from 1 KiB to 1 MiB on the [6, 4] code.

    Decode is timed on the worst-case survivor set (parity-heavy, a dense
    decode matrix) with the inverse cache cold for the first call and warm
    afterwards; the cache hit rate of the timed loop is reported alongside.
    """
    n, k = 6, 4
    code = ReedSolomonCode(n, k)
    sizes = QUICK_THROUGHPUT_SIZES if quick else THROUGHPUT_SIZES
    repeats = 3 if quick else 5
    table = Table(
        f"E9: Reed-Solomon [{n}, {k}] throughput by value size "
        "(decode from the parity-heavy survivor set)",
        ["value size", "encode ms", "encode MB/s", "decode ms", "decode MB/s",
         "decode cache hit rate"],
    )
    for size in sizes:
        value = Value.of_size(size, label="bench")
        elements = code.encode(value)
        survivors = elements[n - k:]
        t_enc = _time(lambda: code.encode(value), repeats)
        decode_cache_clear()
        code.decode(survivors)  # cold call: builds and caches the inverse
        warm_base = decode_cache_info()
        t_dec = _time(lambda: code.decode(survivors), repeats)
        info = decode_cache_info()
        # Rate over the timed loop only (the cold call's miss is excluded).
        timed_hits = info["hits"] - warm_base["hits"]
        timed_misses = info["misses"] - warm_base["misses"]
        hit_rate = timed_hits / max(1, timed_hits + timed_misses)
        mb = size / (1 << 20)
        table.add_row(f"{size >> 10} KiB",
                      round(t_enc * 1e3, 3), round(mb / t_enc, 1),
                      round(t_dec * 1e3, 3), round(mb / t_dec, 1),
                      f"{hit_rate:.0%}")
        assert code.decode(survivors).payload == value.payload
        # Repeated decodes from one quorum must hit the memoised inverse.
        assert info["hits"] >= repeats
    table.print()
    benchmark(lambda: code.decode(survivors))


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
