"""E1 -- Storage cost (Theorem 3(i) / Lemma 38).

Reproduces the storage-cost comparison between TREAS (``(δ+1)·n/k``) and
replication/ABD (``n``): for a sweep of ``n`` (with ``k = ⌈2n/3⌉``) and δ,
the bench saturates a register with writes, measures the object bytes stored
across all servers, normalises by the value size and prints the measured
figure next to the analytic one.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import abd_storage_cost, treas_storage_cost
from repro.analysis.report import Table
from repro.common.values import Value
from repro.registers.static import StaticRegisterDeployment

VALUE_SIZE = 2048


def measured_treas_storage(n: int, k: int, delta: int, value_size: int = VALUE_SIZE) -> float:
    """Write enough distinct values to fill the List, return storage in value units."""
    deployment = StaticRegisterDeployment.treas(num_servers=n, k=k, delta=delta,
                                                num_writers=1, num_readers=1)
    for index in range(delta + 3):
        deployment.write(Value.of_size(value_size, label=f"w{index}"), 0)
    return deployment.total_storage_data_bytes() / value_size


def measured_abd_storage(n: int, value_size: int = VALUE_SIZE) -> float:
    deployment = StaticRegisterDeployment.abd(num_servers=n, num_writers=1, num_readers=1)
    for index in range(3):
        deployment.write(Value.of_size(value_size, label=f"w{index}"), 0)
    return deployment.total_storage_data_bytes() / value_size


@pytest.mark.experiment("E1")
def test_storage_cost_table(benchmark):
    table = Table(
        "E1: total storage cost (units of value size), TREAS [n, k=ceil(2n/3)] vs ABD",
        ["n", "k", "delta", "treas measured", "treas formula", "abd measured", "abd formula"],
    )
    for n in (3, 6, 9, 12):
        k = -(-2 * n // 3)
        for delta in (0, 2, 4):
            measured = measured_treas_storage(n, k, delta)
            abd_measured = measured_abd_storage(n) if delta == 0 else abd_storage_cost(n)
            table.add_row(n, k, delta, measured, treas_storage_cost(n, k, delta),
                          abd_measured, abd_storage_cost(n))
    table.print()

    benchmark(lambda: measured_treas_storage(6, 4, 2))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
