"""Hot-path microbenchmarks and the end-to-end speedup table.

Measures the three overhauled hot paths against the pre-optimisation
reference implementations kept in ``_reference_impl.py``:

* **events/sec** -- the simulator core's slotted tuple-heap + same-time FIFO
  lane versus the ordered-dataclass heap;
* **messages/sec** -- ``Network.send``'s zero-chaos fast path versus the
  always-loop, closure-per-message reference;
* **checker ops/sec** -- the value-partition fast linearizability checker
  versus the Wing-Gong reference search;
* **end-to-end** -- ``run_scenario`` + atomicity verification of a scaled-up
  mixed-DAP storm on the optimised stack versus the reference stack.

Every comparison first asserts behavioural equivalence (identical event
traces / ``History.signature()`` / verdicts), then times both sides.  The
numbers feed ``perf_report.py``, which persists them to ``BENCH_CORE.json``.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from _reference_impl import ReferenceNetwork, ReferenceSimulator, reference_substrate
from repro.analysis.report import Table
from repro.sim.core import Simulator
from repro.spec.linearizability import (check_linearizability,
                                        check_linearizability_reference)
from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import SCENARIOS, get_scenario, run_scenario
from repro.net.network import Network
from repro.net.message import Message
from repro.sim.process import Process
from repro.net.latency import UniformLatency

#: The scaled mixed-DAP storm: the registered scenario's deployment, chaos
#: schedule and reconfiguration pressure, with an order-of-magnitude more
#: client operations (this is the sweep size PR 2 set out to unlock).
STORM = "storm_mixed_dap_chaos"
SCALED_OPS = 150
QUICK_SCALED_OPS = 25


def scaled_storm(ops_per_client: int = SCALED_OPS) -> str:
    """Ensure a scaled variant of the storm is registered; return its name."""
    name = f"{STORM}_x{ops_per_client}"
    if name not in SCENARIOS:
        base = get_scenario(STORM)
        SCENARIOS[name] = dataclasses.replace(
            base, name=name,
            workload=WorkloadSpec(operations_per_writer=ops_per_client,
                                  operations_per_reader=ops_per_client,
                                  value_size=512, think_time=0.5))
    return name


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------- events/sec
def _event_storm(sim, n_timers: int, fanout: int = 4) -> list:
    """A deterministic mix of heap timers and same-time callback chains."""
    fired = []

    def on_timer(i):
        fired.append(i)
        if i % 3 == 0:
            # A cancel soon after scheduling: exercises lazy deletion.
            sim.schedule(5.0, fired.append, args=(-i,)).cancel()
        for k in range(fanout):
            sim.call_soon(fired.append, args=(i * fanout + k,))

    for i in range(n_timers):
        sim.schedule(1.0 + (i % 97) * 0.25, on_timer, args=(i,))
    sim.run()
    return fired


def event_throughput(n_timers: int):
    """Return (events/sec new, events/sec reference); asserts equal behaviour."""
    new_sim, ref_sim = Simulator(seed=1), ReferenceSimulator(seed=1)
    assert _event_storm(new_sim, n_timers) == _event_storm(ref_sim, n_timers)
    t_new = _best_of(lambda: _event_storm(Simulator(seed=1), n_timers))
    t_ref = _best_of(lambda: _event_storm(ReferenceSimulator(seed=1), n_timers))
    events = Simulator(seed=1)
    _event_storm(events, n_timers)
    n_events = events.events_processed
    return n_events / t_new, n_events / t_ref


@pytest.mark.experiment("E10")
def test_event_throughput(benchmark, quick):
    n_timers = 2_000 if quick else 20_000
    per_sec, ref_per_sec = event_throughput(n_timers)
    table = Table(
        "E10: simulator core event throughput (slotted tuple heap + FIFO lane "
        "vs ordered-dataclass heap)",
        ["path", "events/sec", "speedup"],
    )
    table.add_row("reference", f"{ref_per_sec:,.0f}", 1.0)
    table.add_row("optimised", f"{per_sec:,.0f}", round(per_sec / ref_per_sec, 2))
    table.print()
    if not quick:
        assert per_sec > ref_per_sec, "optimised core is slower than the reference"
    benchmark(lambda: _event_storm(Simulator(seed=1), 200))


# -------------------------------------------------------------- messages/sec
class _Echo(Process):
    """Replies to every PING with a PONG (and counts deliveries)."""

    def on_message(self, src, message):
        if message.kind == "PING":
            self.network.send(self.pid, src, Message(kind="PONG", data_bytes=64))


def _message_storm(network_cls, sim, n_messages: int) -> tuple:
    from repro.common.ids import server_id

    network = network_cls(sim, latency=UniformLatency(1.0, 2.0))
    nodes = [_Echo(server_id(i), network) for i in range(6)]
    for i in range(n_messages):
        src = nodes[i % 6]
        dst = nodes[(i * 5 + 1) % 6]
        src.send(dst.pid, Message(kind="PING", data_bytes=64))
    sim.run()
    return network.messages_delivered, network.stats.global_record.total_bytes


def message_throughput(n_messages: int):
    """Return (messages/sec new, messages/sec reference); asserts equivalence."""
    a = _message_storm(Network, Simulator(seed=2), n_messages)
    b = _message_storm(ReferenceNetwork, ReferenceSimulator(seed=2), n_messages)
    assert a == b, f"fast-path delivery diverged from the reference: {a} != {b}"
    t_new = _best_of(lambda: _message_storm(Network, Simulator(seed=2), n_messages))
    t_ref = _best_of(lambda: _message_storm(ReferenceNetwork, ReferenceSimulator(seed=2), n_messages))
    delivered = a[0]
    return delivered / t_new, delivered / t_ref


@pytest.mark.experiment("E10")
def test_message_throughput(benchmark, quick):
    n_messages = 2_000 if quick else 20_000
    per_sec, ref_per_sec = message_throughput(n_messages)
    table = Table(
        "E10: network send/deliver throughput, zero-chaos fast path "
        "(hookless sends skip every fault loop, no closure per message)",
        ["path", "messages/sec", "speedup"],
    )
    table.add_row("reference", f"{ref_per_sec:,.0f}", 1.0)
    table.add_row("optimised", f"{per_sec:,.0f}", round(per_sec / ref_per_sec, 2))
    table.print()
    if not quick:
        assert per_sec > ref_per_sec, "fast path is slower than the reference send"
    benchmark(lambda: _message_storm(Network, Simulator(seed=2), 200))


# ------------------------------------------------------------- checker speed
def checker_comparison(ops_per_client: int):
    """Check the scaled storm's history with both checkers; return metrics."""
    name = scaled_storm(ops_per_client)
    result = run_scenario(name, seed=0)
    history = result.history
    fast = check_linearizability(history)
    t_fast = _best_of(lambda: check_linearizability(history))
    reference = check_linearizability_reference(history)
    t_ref = _best_of(lambda: check_linearizability_reference(history), repeats=1)
    assert fast.ok and reference.ok and fast.method == "fast", (
        f"checker disagreement or fallback on {name}: fast={fast.ok}/{fast.method} "
        f"reference={reference.ok}")
    n_ops = len(history)
    return {
        "history_ops": n_ops,
        "fast_sec": t_fast,
        "reference_sec": t_ref,
        "ops_per_sec": n_ops / t_fast,
        "reference_ops_per_sec": n_ops / t_ref,
        "fast_states_explored": fast.states_explored,
        "reference_states_explored": reference.states_explored,
    }


@pytest.mark.experiment("E10")
def test_checker_speedup(benchmark, quick):
    metrics = checker_comparison(QUICK_SCALED_OPS if quick else SCALED_OPS)
    table = Table(
        "E10: linearizability checking of the scaled mixed-DAP storm history "
        "(value-partition fast checker vs Wing-Gong reference search)",
        ["path", "history ops", "ms", "states explored", "checker ops/sec"],
    )
    table.add_row("reference", metrics["history_ops"],
                  round(metrics["reference_sec"] * 1e3, 1),
                  metrics["reference_states_explored"],
                  f"{metrics['reference_ops_per_sec']:,.0f}")
    table.add_row("fast", metrics["history_ops"],
                  round(metrics["fast_sec"] * 1e3, 1),
                  metrics["fast_states_explored"],
                  f"{metrics['ops_per_sec']:,.0f}")
    table.print()
    if not quick:
        assert metrics["ops_per_sec"] > 3 * metrics["reference_ops_per_sec"], (
            "fast checker shows no clear win over the reference search")
    history = run_scenario(scaled_storm(QUICK_SCALED_OPS), seed=0).history
    benchmark(lambda: check_linearizability(history))


# ------------------------------------------------------------- end to end
def end_to_end_comparison(ops_per_client: int, seed: int = 0):
    """Run + verify the scaled storm on both stacks; return metrics.

    'End to end' is the full scenario pipeline as CI exercises it: the
    seed-deterministic chaos run followed by atomicity verification of the
    recorded history.
    """
    name = scaled_storm(ops_per_client)

    start = time.perf_counter()
    new_result = run_scenario(name, seed=seed)
    new_run = time.perf_counter() - start
    start = time.perf_counter()
    new_check = check_linearizability(new_result.history)
    new_verify = time.perf_counter() - start

    start = time.perf_counter()
    with reference_substrate():
        ref_result = run_scenario(name, seed=seed)
    ref_run = time.perf_counter() - start
    start = time.perf_counter()
    ref_check = check_linearizability_reference(ref_result.history)
    ref_verify = time.perf_counter() - start

    assert new_result.signature() == ref_result.signature(), (
        "optimised and reference stacks diverged (determinism broken)")
    assert new_check.ok and ref_check.ok
    return {
        "scenario": name,
        "history_ops": len(new_result.history),
        "events": new_result.deployment.sim.events_processed,
        "messages": new_result.deployment.network.messages_sent,
        "new_run_sec": new_run,
        "new_verify_sec": new_verify,
        "new_total_sec": new_run + new_verify,
        "reference_run_sec": ref_run,
        "reference_verify_sec": ref_verify,
        "reference_total_sec": ref_run + ref_verify,
        "speedup": (ref_run + ref_verify) / (new_run + new_verify),
    }


@pytest.mark.experiment("E10")
def test_end_to_end_storm_speedup(benchmark, quick):
    metrics = end_to_end_comparison(QUICK_SCALED_OPS if quick else SCALED_OPS)
    table = Table(
        f"E10: end-to-end {metrics['scenario']} (run_scenario + atomicity "
        f"verification; {metrics['history_ops']} ops, {metrics['events']} events)",
        ["path", "run ms", "verify ms", "total ms", "speedup"],
    )
    table.add_row("reference stack",
                  round(metrics["reference_run_sec"] * 1e3),
                  round(metrics["reference_verify_sec"] * 1e3),
                  round(metrics["reference_total_sec"] * 1e3), 1.0)
    table.add_row("optimised stack",
                  round(metrics["new_run_sec"] * 1e3),
                  round(metrics["new_verify_sec"] * 1e3),
                  round(metrics["new_total_sec"] * 1e3),
                  round(metrics["speedup"], 2))
    table.print()
    if not quick:
        assert metrics["speedup"] >= 3.0, (
            f"end-to-end speedup {metrics['speedup']:.2f}x below the 3x target")
    benchmark(lambda: run_scenario(STORM, seed=0))


if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
