"""Observability overhead benchmark: metrics must be (nearly) free.

Runs a scaled-up mixed-DAP storm with metrics disabled and enabled and
compares best-of-N wall clock.  Two gates:

* **Differential**: the instrumented run's history signature must be
  byte-identical to the plain run's -- metrics never perturb execution.
* **Overhead** (``--check``): the instrumented best-of-N must stay within
  ``OVERHEAD_LIMIT`` (10%) of the plain best-of-N.  With metrics disabled
  the plane is a handful of ``is not None`` tests, which the calibrated
  ``BENCH_CORE`` gate already covers; this benchmark prices the *enabled*
  path.

Methodology, tuned for noisy shared machines:

* the registered storm's workload is scaled ``OPS_SCALE``x so the run is
  long enough (~400 ops, >100 ms) that per-run fixed costs (registry
  install, the end-of-run report export) amortise, short machine phases
  average out and the number measures the steady-state hot-path cost;
* the two legs are **interleaved pairwise** -- each repetition times one
  plain and one instrumented run back to back, alternating which goes
  first -- so slow machine phases hit both legs equally instead of
  whichever leg happened to run later; two overhead estimators are
  computed -- the ratio of **best-of-N** times and the **median of the
  per-pair ratios** -- and the gate takes the smaller.  Machine-phase
  noise is additive, so a phase inflates one estimator at a time (a
  lucky plain minimum skews best-of, a descheduled pair skews the
  median); both only agree on a high number when the overhead is real;
* a ``--check`` run that lands over the limit re-measures once and keeps
  the smaller reading -- a multi-second noise phase does not survive two
  sessions, a real regression does.
* the cyclic garbage collector is paused inside every timed region (both
  legs) and settled outside it, so neither leg is billed for threshold
  coin flips or the other leg's collector debt (allocation cost itself
  stays on the clock);
* both legs start with the process-global payload/decode caches cleared
  (instrumented runs always clear them so exported hit rates are a pure
  function of the cell), keeping cache state identical at run start.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py                 # measure
    PYTHONPATH=src python benchmarks/bench_obs.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_obs.py --quick --check # gate
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import hashlib
import json
import sys
import time

#: Instrumented wall clock may exceed plain wall clock by at most this.
OVERHEAD_LIMIT = 0.10

#: The scenario priced: every DAP, a keyed store, chaos and reconfig
#: pressure all at once -- the densest instrumentation coverage available.
SCENARIO = "store_mixed_dap_storm"

#: Workload multiplier applied to the registered scenario's per-client
#: operation counts (see module docstring).
OPS_SCALE = 16

#: Interleaved measurement pairs (full / --quick).
REPEATS = 11
QUICK_REPEATS = 7


def _scaled_scenario():
    """The storm scenario with its workload scaled ``OPS_SCALE``x."""
    from repro.workloads.scenarios import get_scenario

    base = get_scenario(SCENARIO)
    workload = dataclasses.replace(
        base.workload,
        operations_per_writer=base.workload.operations_per_writer * OPS_SCALE,
        operations_per_reader=base.workload.operations_per_reader * OPS_SCALE)
    return dataclasses.replace(base, workload=workload)


def _timed_run(scenario, seed: int, metrics: bool) -> "tuple[float, object]":
    """One cache-cold, collector-quiet run; returns (seconds, result).

    The cyclic collector is paused inside the timed region (for *both*
    legs) and its debt paid off outside: collection sweeps trigger at
    allocation-count thresholds, so whether one fires inside a 60 ms run
    is effectively a coin flip that would dominate a sub-10%% comparison.
    Allocation cost itself -- the real, deterministic price of the extra
    metric objects -- is still fully on the clock.
    """
    from repro.common.values import payload_cache_clear
    from repro.erasure.rs import decode_cache_clear
    from repro.workloads.scenarios import run_scenario_instance

    payload_cache_clear()
    decode_cache_clear()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_scenario_instance(scenario, seed=seed, metrics=metrics)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, result


def _measure(scenario, seed: int, repeats: int) -> "tuple[dict, dict, float]":
    """Interleaved pairs; returns both legs plus the median pair ratio."""
    best = {False: float("inf"), True: float("inf")}
    results = {}
    ratios = []
    for index in range(repeats):
        # Alternate leg order so monotone machine drift cancels.
        order = (False, True) if index % 2 == 0 else (True, False)
        pair = {}
        for metrics in order:
            elapsed, result = _timed_run(scenario, seed, metrics)
            pair[metrics] = elapsed
            best[metrics] = min(best[metrics], elapsed)
            results[metrics] = result
        ratios.append(pair[True] / pair[False])
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2] if len(ratios) % 2 else (
        (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2.0)

    def leg(metrics: bool) -> dict:
        result = results[metrics]
        signature = hashlib.sha256(
            repr(result.signature()).encode()).hexdigest()
        return {"best_sec": best[metrics], "signature": signature,
                "ops": len(result.history),
                "metrics_series": 0 if result.metrics is None else
                sum(len(result.metrics.data[kind])
                    for kind in ("counters", "gauges", "histograms"))}

    return leg(False), leg(True), median_ratio


def main(argv=None) -> int:
    """Run the comparison; with ``--check`` exit non-zero past the gates."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_REPEATS} measurement pairs instead of "
                             f"{REPEATS}")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when instrumented overhead exceeds "
                             f"{OVERHEAD_LIMIT:.0%} or the signature moved")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="write the measurement JSON here")
    args = parser.parse_args(argv)

    repeats = QUICK_REPEATS if args.quick else REPEATS
    scenario = _scaled_scenario()
    # Warm imports/caches outside the timed region so the first pair isn't
    # charged for them.
    _timed_run(scenario, args.seed, metrics=True)

    plain, instrumented, median_ratio = _measure(scenario, args.seed, repeats)
    best_overhead = instrumented["best_sec"] / plain["best_sec"] - 1.0
    median_overhead = median_ratio - 1.0
    overhead = min(best_overhead, median_overhead)
    if args.check and overhead > OVERHEAD_LIMIT:
        # One re-measure absorbs a multi-second machine-noise phase; a
        # real regression fails both sessions (see module docstring).
        print(f"  over limit at {overhead:+.2%}; re-measuring once")
        plain2, instrumented2, median_ratio2 = _measure(
            scenario, args.seed, repeats)
        best2 = instrumented2["best_sec"] / plain2["best_sec"] - 1.0
        retry = min(best2, median_ratio2 - 1.0)
        if retry < overhead:
            plain, instrumented = plain2, instrumented2
            best_overhead, median_overhead = best2, median_ratio2 - 1.0
            overhead = retry

    report = {
        "scenario": SCENARIO, "ops_scale": OPS_SCALE, "seed": args.seed,
        "repeats": repeats,
        "plain_best_sec": round(plain["best_sec"], 5),
        "instrumented_best_sec": round(instrumented["best_sec"], 5),
        "overhead": round(overhead, 4),
        "overhead_best_of": round(best_overhead, 4),
        "overhead_median_pair": round(median_overhead, 4),
        "overhead_limit": OVERHEAD_LIMIT,
        "signatures_match": plain["signature"] == instrumented["signature"],
        "history_ops": plain["ops"],
        "metrics_series": instrumented["metrics_series"],
    }
    print(f"{SCENARIO} x{OPS_SCALE} seed={args.seed} ops={plain['ops']} "
          f"({repeats} interleaved pairs)")
    print(f"  plain        {plain['best_sec'] * 1000:8.2f} ms (best)")
    print(f"  instrumented {instrumented['best_sec'] * 1000:8.2f} ms (best, "
          f"{instrumented['metrics_series']} series)")
    print(f"  overhead     {overhead:+.2%} (best-of {best_overhead:+.2%}, "
          f"median pair {median_overhead:+.2%}, limit {OVERHEAD_LIMIT:.0%})")
    print(f"  signatures   "
          f"{'identical' if report['signatures_match'] else 'DIVERGED'}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if not report["signatures_match"]:
        print("FAIL: metrics instrumentation changed the execution")
        return 1
    if args.check and overhead > OVERHEAD_LIMIT:
        print(f"FAIL: instrumented overhead {overhead:.2%} exceeds "
              f"{OVERHEAD_LIMIT:.0%}")
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
