"""E10 -- Scale-out sweep campaigns: serial vs parallel wall clock.

Runs the full chaos-scenario registry as a multi-seed campaign twice --
serially (``jobs=1``) and over a process pool -- and reports the wall-clock
speedup, the per-cell timings and the determinism gate: every cell's
``History.signature()`` hash must be byte-identical between the two
executions.  Results are persisted to ``BENCH_SWEEP.json`` at the repository
root (the scale-out counterpart of ``BENCH_CORE.json``).

The >=2.5x speedup assertion only arms on hosts with at least four usable
cores and in full mode; the signature gate always runs.  ``--quick`` shrinks
the grid to 2 scenarios x 2 seeds with a 2-worker pool for CI smoke runs.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

from repro.analysis.report import Table
from repro.sweep import SweepGrid, campaign, resolve_scenarios
from repro.sweep.engine import usable_cores

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
#: The committed full-grid baseline; quick runs write next to it instead so
#: a CI smoke (or a developer's --quick) never clobbers the full-registry
#: numbers cited by docs/PERFORMANCE.md.
REPORT_PATH = _REPO_ROOT / "BENCH_SWEEP.json"
QUICK_REPORT_PATH = _REPO_ROOT / "bench-sweep-quick.json"

FULL_SEEDS = (0, 1, 2, 3)
QUICK_SEEDS = (0, 1)
QUICK_SCENARIOS = ("abd_crash_minority", "treas_crash_server")

#: Floor for the parallel speedup on hosts where parallelism is physically
#: available (the ISSUE 3 acceptance bar).
SPEEDUP_FLOOR = 2.5


@pytest.mark.experiment("E10")
def test_sweep_serial_vs_parallel(quick, jobs):
    """Campaign the registry serially and pooled; gate determinism, report speedup."""
    scenarios = QUICK_SCENARIOS if quick else resolve_scenarios(["all"])
    grid = SweepGrid(scenarios=tuple(scenarios),
                     seeds=QUICK_SEEDS if quick else FULL_SEEDS)

    serial = campaign(grid, jobs=1)
    parallel = campaign(grid, jobs=jobs)

    # Every cell must pass verification in both executions.
    for result, mode in ((serial, "serial"), (parallel, f"jobs={jobs}")):
        failures = result.failures()
        assert not failures, (
            f"{mode} campaign failed cells: "
            f"{[(r.cell_id, r.failure) for r in failures]}")

    # Determinism gate: pooled workers reproduce the serial histories
    # hash-for-hash (the signature covers every operation *and* the chaos log).
    serial_map = serial.signature_map()
    parallel_map = parallel.signature_map()
    assert serial_map == parallel_map, (
        "sweep cells diverged between serial and pooled execution: "
        + ", ".join(sorted(cell for cell in serial_map
                           if parallel_map.get(cell) != serial_map[cell])))

    speedup = serial.wall_clock_sec / parallel.wall_clock_sec
    cores = usable_cores()

    table = Table(
        f"E10: campaign wall clock, {len(serial.records)} cells "
        f"({len(grid.scenarios)} scenarios x {len(grid.seeds)} seeds), "
        f"{cores} usable cores",
        ["execution", "wall clock s", "cell-time sum s", "speedup"],
    )
    cell_sum = sum(r.wall_clock_sec for r in serial.records)
    table.add_row("serial", round(serial.wall_clock_sec, 3), round(cell_sum, 3), 1.0)
    table.add_row(f"pool jobs={jobs}", round(parallel.wall_clock_sec, 3),
                  round(sum(r.wall_clock_sec for r in parallel.records), 3),
                  round(speedup, 2))
    table.print()

    slowest = sorted(serial.records, key=lambda r: -r.wall_clock_sec)[:5]
    detail = Table(
        "E10: slowest cells (serial), latency percentiles per cell",
        ["cell", "wall s", "ops", "read p50", "read p99", "write p50", "write p99"],
    )
    for record in slowest:
        detail.add_row(record.cell_id, round(record.wall_clock_sec, 3),
                       record.history_ops,
                       record.read_latency["p50"], record.read_latency["p99"],
                       record.write_latency["p50"], record.write_latency["p99"])
    detail.print()

    report = {
        "schema": 1,
        "generated_by": "benchmarks/bench_sweep.py",
        "quick": quick,
        "python": platform.python_version(),
        "usable_cores": cores,
        "jobs": jobs,
        "grid": serial.grid,
        "serial_wall_clock_sec": round(serial.wall_clock_sec, 4),
        "parallel_wall_clock_sec": round(parallel.wall_clock_sec, 4),
        "speedup": round(speedup, 2),
        "signature_gate": "identical",
        "checker_methods": serial.checker_method_counts(),
        "cells": [record.to_json() for record in serial.records],
    }
    report_path = QUICK_REPORT_PATH if quick else REPORT_PATH
    report_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {report_path} (speedup {speedup:.2f}x at jobs={jobs}, "
          f"{cores} usable cores)")

    # The speedup floor is only meaningful where the hardware can deliver it.
    if not quick and jobs >= 4 and cores >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs={jobs} speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
