"""E10 -- Scale-out sweep campaigns: decomposed serial-vs-parallel timings.

Two arms, both gated on the determinism guarantee (every cell's
``History.signature()`` hash byte-identical between serial and pooled
execution):

* **small cells** -- the full chaos-scenario registry, multi-seed: ~5-15ms
  cells where per-task dispatch cost used to *lose* to serial (the 0.67x
  regression this engine's chunking removed).  The gate here is overhead,
  not speedup: on any host, chunked dispatch overhead (pooled wall clock
  minus pool spin-up minus the compute a perfect pool would need) must
  stay within 10% of the serial wall clock.
* **large cells** -- a store scenario scaled to >=100ms cells
  (operation counts and keyspace up), where parallelism can genuinely
  win: pooled speedup must reach >=2.0x on hosts with >=4 usable cores.

Wall clock is decomposed per arm into pool spin-up / dispatch overhead /
compute, so a regression report says *which* part got slower.  Results are
persisted to ``BENCH_SWEEP.json`` at the repository root (the scale-out
counterpart of ``BENCH_CORE.json``); ``--quick`` shrinks both arms and
writes ``bench-sweep-quick.json`` instead.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

from repro.analysis.report import Table
from repro.sweep import SweepGrid, campaign, resolve_scenarios
from repro.sweep.engine import usable_cores

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
#: The committed full-grid baseline; quick runs write next to it instead so
#: a CI smoke (or a developer's --quick) never clobbers the full-registry
#: numbers cited by docs/PERFORMANCE.md.
REPORT_PATH = _REPO_ROOT / "BENCH_SWEEP.json"
QUICK_REPORT_PATH = _REPO_ROOT / "bench-sweep-quick.json"

FULL_SEEDS = (0, 1, 2, 3)
QUICK_SEEDS = (0, 1)
QUICK_SCENARIOS = ("abd_crash_minority", "treas_crash_server")

#: The large-cell arm: one store scenario with the workload scaled until a
#: cell costs >=100ms (320 ops over a 32-key keyspace), so compute -- not
#: dispatch -- dominates and a pool can actually win.
LARGE_CELL_SCENARIO = "store_mixed_dap_storm"
LARGE_CELL_PARAMS = (("num_keys", (32,)),
                     ("operations_per_reader", (40,)),
                     ("operations_per_writer", (40,)))
LARGE_FULL_SEEDS = tuple(range(8))

#: Pooled speedup floor for the large-cell arm on hosts where parallelism
#: is physically available.
SPEEDUP_FLOOR = 2.0
#: Chunked dispatch overhead bound for the small-cell arm, as a fraction of
#: the serial wall clock (the "no more 0.67x" gate, meaningful on any host).
OVERHEAD_FRAC_FLOOR = 0.10
#: Absolute slack under the overhead gate so a sub-second quick grid's
#: fixed costs (a few pool round trips) don't read as a regression.
OVERHEAD_SLACK_SEC = 0.25
#: Each arm runs serial and pooled this many times and reports the best
#: wall clock of each -- sub-second campaigns on a shared host otherwise
#: measure scheduler noise, not the engine.
FULL_REPEATS = 3


def _best_of(repeats: int, run):
    """The run with the smallest campaign wall clock out of ``repeats``."""
    return min((run() for _ in range(repeats)),
               key=lambda result: result.wall_clock_sec)


def _run_arm(name: str, grid: SweepGrid, jobs: int, repeats: int) -> dict:
    """Serial + pooled campaign over one grid; gate determinism, decompose time."""
    serial = _best_of(repeats, lambda: campaign(grid, jobs=1))
    parallel = _best_of(repeats, lambda: campaign(grid, jobs=jobs))

    for result, mode in ((serial, "serial"), (parallel, f"jobs={jobs}")):
        failures = result.failures()
        assert not failures, (
            f"{name} {mode} campaign failed cells: "
            f"{[(r.cell_id, r.failure) for r in failures]}")

    # Determinism gate: pooled workers reproduce the serial histories
    # hash-for-hash (the signature covers every operation AND the chaos log).
    serial_map = serial.signature_map()
    parallel_map = parallel.signature_map()
    assert serial_map == parallel_map, (
        f"{name} cells diverged between serial and pooled execution: "
        + ", ".join(sorted(cell for cell in serial_map
                           if parallel_map.get(cell) != serial_map[cell])))

    # Decomposition: what a perfectly-scaling pool would spend on compute
    # (the serial wall clock divided over the worker processes the engine
    # actually ran -- NOT the sum of in-worker wall clocks, which inflates
    # under oversubscription when workers time-share a core), and what the
    # real pool spent on top of that (task pickling, result streaming,
    # imbalance, contention).
    compute = sum(r.wall_clock_sec for r in parallel.records)
    ideal = serial.wall_clock_sec / parallel.workers
    overhead = parallel.wall_clock_sec - parallel.pool_spinup_sec - ideal
    speedup = serial.wall_clock_sec / parallel.wall_clock_sec
    return {
        "grid": serial.grid,
        "cells": len(serial.records),
        "jobs": jobs,
        "workers": parallel.workers,
        "chunk": parallel.chunk,
        "serial_wall_clock_sec": round(serial.wall_clock_sec, 4),
        "parallel_wall_clock_sec": round(parallel.wall_clock_sec, 4),
        "speedup": round(speedup, 2),
        "pool_spinup_sec": round(parallel.pool_spinup_sec, 4),
        "compute_sec": round(compute, 4),
        "ideal_parallel_sec": round(ideal, 4),
        "dispatch_overhead_sec": round(overhead, 4),
        "dispatch_overhead_frac": round(overhead / serial.wall_clock_sec, 4)
        if serial.wall_clock_sec else 0.0,
        "signature_gate": "identical",
        "checker_methods": serial.checker_method_counts(),
        "cells_detail": [record.to_json() for record in serial.records],
    }


@pytest.mark.experiment("E10")
def test_sweep_serial_vs_parallel(quick, jobs):
    """Campaign both arms serially and pooled; gate overhead, speedup, determinism."""
    cores = usable_cores()

    small_scenarios = QUICK_SCENARIOS if quick else resolve_scenarios(["all"])
    small_grid = SweepGrid(scenarios=tuple(small_scenarios),
                           seeds=QUICK_SEEDS if quick else FULL_SEEDS)
    large_grid = SweepGrid(scenarios=(LARGE_CELL_SCENARIO,),
                           seeds=QUICK_SEEDS if quick else LARGE_FULL_SEEDS,
                           params=LARGE_CELL_PARAMS)

    repeats = 1 if quick else FULL_REPEATS
    arms = {"small_cells": _run_arm("small_cells", small_grid, jobs, repeats),
            "large_cells": _run_arm("large_cells", large_grid, jobs, repeats)}

    table = Table(
        f"E10: campaign wall clock decomposition, jobs={jobs}, "
        f"{cores} usable cores",
        ["arm", "cells", "workers", "chunk", "serial s", "pooled s",
         "spin-up s", "dispatch s", "speedup"],
    )
    for name, arm in arms.items():
        table.add_row(name, arm["cells"], arm["workers"], arm["chunk"],
                      arm["serial_wall_clock_sec"],
                      arm["parallel_wall_clock_sec"],
                      arm["pool_spinup_sec"],
                      arm["dispatch_overhead_sec"],
                      arm["speedup"])
    table.print()

    slowest = sorted(arms["small_cells"]["cells_detail"],
                     key=lambda c: -c["wall_clock_sec"])[:5]
    detail = Table(
        "E10: slowest small cells (serial), latency percentiles per cell",
        ["cell", "wall s", "ops", "read p50", "read p99", "write p50", "write p99"],
    )
    for cell in slowest:
        detail.add_row(cell["cell"], cell["wall_clock_sec"], cell["history_ops"],
                       cell["read_latency"]["p50"], cell["read_latency"]["p99"],
                       cell["write_latency"]["p50"], cell["write_latency"]["p99"])
    detail.print()

    report = {
        "schema": 2,
        "generated_by": "benchmarks/bench_sweep.py",
        "quick": quick,
        "python": platform.python_version(),
        "usable_cores": cores,
        "jobs": jobs,
        "arms": arms,
    }
    report_path = QUICK_REPORT_PATH if quick else REPORT_PATH
    report_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {report_path} (small {arms['small_cells']['speedup']:.2f}x, "
          f"large {arms['large_cells']['speedup']:.2f}x at jobs={jobs}, "
          f"{cores} usable cores)")

    # Overhead gate (any host, full mode): chunked dispatch must not eat
    # more than 10% of the serial wall clock -- the small-cell arm is where
    # the un-chunked engine regressed to 0.67x.
    if not quick:
        small = arms["small_cells"]
        bound = OVERHEAD_FRAC_FLOOR * small["serial_wall_clock_sec"] \
            + OVERHEAD_SLACK_SEC
        assert small["dispatch_overhead_sec"] <= bound, (
            f"small-cell dispatch overhead {small['dispatch_overhead_sec']}s "
            f"exceeds 10% of serial wall clock "
            f"({small['serial_wall_clock_sec']}s) + {OVERHEAD_SLACK_SEC}s slack")

    # Speedup floor: only where the hardware can deliver it, and only on
    # cells big enough for compute to dominate.
    if not quick and jobs >= 4 and cores >= 4:
        large = arms["large_cells"]
        assert large["speedup"] >= SPEEDUP_FLOOR, (
            f"large-cell jobs={jobs} speedup {large['speedup']:.2f}x is below "
            f"the {SPEEDUP_FLOOR}x floor on a {cores}-core host")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
