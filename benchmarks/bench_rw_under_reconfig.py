"""E6 -- Read/write latency while reconfigurations are in flight (Lemmas 59-60).

The worst case of the latency analysis: reconfiguration traffic enjoys the
minimum delay ``d`` while client traffic suffers the maximum delay ``D``
(the asymmetric latency construction of Section 4.4).  The bench sweeps the
number of concurrent reconfigurations and reports the client operation
latencies, the number of configurations each operation had to traverse, and
the Lemma 59 envelope ``6D(ν − µ + 2)``.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import min_delay_for_termination, rw_operation_upper_bound
from repro.analysis.report import Table
from repro.common.ids import Role
from repro.core.deployment import AresDeployment, DeploymentSpec
from repro.net.latency import AsymmetricLatency, FixedLatency

FAST = 0.25   # d for reconfiguration traffic
SLOW = 2.0    # D for client traffic


def run_with_reconfig_storm(num_reconfigs: int, seed: int = 0):
    latency = AsymmetricLatency(
        default=FixedLatency(SLOW),
        overrides={(Role.RECONFIGURER, None): FixedLatency(FAST),
                   (None, Role.RECONFIGURER): FixedLatency(FAST)},
    )
    deployment = AresDeployment(DeploymentSpec(
        num_servers=5, initial_dap="treas", delta=8, num_writers=1, num_readers=1,
        num_reconfigurers=1, latency=latency, seed=seed))
    reconfigurer = deployment.reconfigurers[0]

    def storm():
        for _ in range(num_reconfigs):
            configuration = deployment.make_configuration(dap="treas", fresh_servers=5, k=4)
            yield from reconfigurer.reconfig(configuration)
        return None

    ops = [deployment.spawn_write(deployment.writers[0].next_value(256), 0),
           deployment.spawn_read(0)]
    if num_reconfigs:
        reconfigurer.spawn(storm(), label="storm")
    deployment.run()
    assert all(op.exception() is None for op in ops)
    write_latency = deployment.history.writes()[-1].latency
    read_latency = deployment.history.reads()[-1].latency
    nu_end = max(deployment.writers[0].cseq.nu, deployment.readers[0].cseq.nu)
    return write_latency, read_latency, nu_end


@pytest.mark.experiment("E6")
def test_rw_latency_under_concurrent_reconfigurations(benchmark):
    table = Table(
        f"E6: client op latency with k concurrent reconfigurations "
        f"(reconfig d={FAST}, client D={SLOW})",
        ["k reconfigs", "write latency", "read latency", "configs traversed",
         "6D(nu-mu+2) bound", "Lemma60 d threshold"],
    )
    for num_reconfigs in (0, 1, 2, 4):
        write_latency, read_latency, nu_end = run_with_reconfig_storm(num_reconfigs)
        bound = rw_operation_upper_bound(SLOW, mu_start=0, nu_end=nu_end)
        threshold = (min_delay_for_termination(SLOW, 0.0, num_reconfigs)
                     if num_reconfigs else 0.0)
        table.add_row(num_reconfigs, write_latency, read_latency, nu_end, bound, threshold)
        assert write_latency <= bound
        assert read_latency <= bound
    table.print()

    benchmark(lambda: run_with_reconfig_storm(1))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
