"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E9): it prints the paper-style table/series it
reproduces and registers one representative configuration with
pytest-benchmark so wall-clock regressions are tracked too.

Run with::

    pytest benchmarks/ --benchmark-only

Every module is also directly executable (exits non-zero on failure) and
accepts ``--quick`` for CI smoke runs::

    PYTHONPATH=src python benchmarks/bench_erasure.py --quick
"""

from __future__ import annotations

import sys

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink payloads and parameter sweeps so a smoke run finishes in seconds",
    )
    parser.addoption(
        "--jobs", action="store", type=int, default=None,
        help="worker-pool size for the sweep benchmark (default: available "
             "cores capped at 4 in full mode, 2 with --quick)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "experiment(id): paper experiment id (E1-E9)")


@pytest.fixture
def quick(request) -> bool:
    """Whether the benchmark should run its reduced CI smoke variant."""
    return request.config.getoption("--quick")


@pytest.fixture
def jobs(request, quick) -> int:
    """Pool size for ``bench_sweep.py`` (``--jobs``, else a host-sized default)."""
    explicit = request.config.getoption("--jobs")
    if explicit is not None:
        return max(1, explicit)
    from repro.sweep import default_jobs

    # At least 2 so the pooled path is always exercised, even on one core
    # (where the speedup assertion is skipped but the determinism gate runs).
    return min(2 if quick else 4, max(2, default_jobs()))


def main(module_file: str, argv=None) -> int:
    """Script entry point shared by every ``bench_*.py`` module.

    Runs the module under pytest so the ``benchmark`` fixture and markers
    work, returns pytest's exit code (non-zero on any failure) and maps
    ``--quick`` to the reduced-parameters mode with timing disabled.
    """
    argv = sys.argv[1:] if argv is None else argv
    # -s: the paper-style tables the modules print ARE the benchmark output.
    pytest_args = [module_file, "-x", "-q", "-s"]
    if "--quick" in argv:
        pytest_args += ["--quick", "--benchmark-disable"]
    extra = [a for a in argv if a != "--quick"]
    return pytest.main(pytest_args + extra)
