"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E9): it prints the paper-style table/series it
reproduces and registers one representative configuration with
pytest-benchmark so wall-clock regressions are tracked too.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "experiment(id): paper experiment id (E1-E9)")
