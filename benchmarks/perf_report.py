"""Machine-readable performance baseline: emit / check ``BENCH_CORE.json``.

Runs the hot-path benchmarks of ``bench_simcore.py`` plus an end-to-end
sweep over every registered chaos scenario and writes the results to
``BENCH_CORE.json`` at the repository root, so each PR records the
performance trajectory the ROADMAP asks for.

Because absolute events/sec depends on the host, the report also times a
fixed pure-Python **calibration probe**; regression checks scale the
committed baseline by the ratio of probe speeds before applying the
threshold, which makes the >30% events/sec regression gate meaningful on
CI runners that are faster or slower than the machine that produced the
baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # regenerate
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # CI-sized run
    PYTHONPATH=src python benchmarks/perf_report.py --quick --check
        # measure, compare against the committed BENCH_CORE.json and exit
        # non-zero on regression (the baseline file is left untouched)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_CORE.json"

#: Tolerated slowdown of calibrated events/sec before --check fails (the
#: ISSUE 2 gate: fail CI if events/sec regresses by more than 30%).
REGRESSION_TOLERANCE = 0.70


def calibration_probe() -> float:
    """Fixed pure-Python workload; returns iterations/sec of the host.

    Deliberately uses the same kind of work the simulator does (integer
    arithmetic, tuple comparisons, dict traffic) so the ratio between two
    hosts transfers approximately to events/sec.
    """
    def probe() -> int:
        total = 0
        bucket = {}
        pair = (0, 0)
        for i in range(200_000):
            key = i & 1023
            bucket[key] = bucket.get(key, 0) + i
            if (i & 511, key) > pair:
                pair = (i & 511, key)
            total += i
        return total

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        probe()
        best = min(best, time.perf_counter() - start)
    return 200_000 / best


def build_report(quick: bool) -> dict:
    from bench_simcore import (SCALED_OPS, QUICK_SCALED_OPS, checker_comparison,
                               end_to_end_comparison, event_throughput,
                               message_throughput)
    from repro.workloads.scenarios import run_scenario, scenario_names

    # Snapshot the canonical registry before the comparisons below register
    # their benchmark-internal scaled storm variant: the per-scenario sweep
    # must cover exactly the committed scenarios, identically in --quick and
    # full mode.
    canonical_scenarios = list(scenario_names())

    ops = QUICK_SCALED_OPS if quick else SCALED_OPS
    events_per_sec, ref_events_per_sec = event_throughput(2_000 if quick else 20_000)
    messages_per_sec, ref_messages_per_sec = message_throughput(2_000 if quick else 20_000)
    checker = checker_comparison(ops)
    end_to_end = end_to_end_comparison(ops)

    scenarios = {}
    for name in canonical_scenarios:
        start = time.perf_counter()
        result = run_scenario(name, seed=0)
        # check() runs the full verification (liveness, linearizability --
        # per key for keyed store scenarios -- and tag monotonicity).
        failure, checker_method = result.check()
        wall = time.perf_counter() - start
        assert failure is None, f"scenario {name} failed verification: {failure}"
        scenarios[name] = {
            "wall_clock_sec": round(wall, 4),
            "history_ops": len(result.history),
            "events": result.deployment.sim.events_processed,
            "messages": result.deployment.network.messages_sent,
            "checker_method": checker_method,
        }

    return {
        "schema": 1,
        "generated_by": "benchmarks/perf_report.py",
        "quick": quick,
        "python": platform.python_version(),
        "calibration_ops_per_sec": round(calibration_probe()),
        "sim": {
            "events_per_sec": round(events_per_sec),
            "reference_events_per_sec": round(ref_events_per_sec),
            "speedup": round(events_per_sec / ref_events_per_sec, 2),
        },
        "net": {
            "messages_per_sec": round(messages_per_sec),
            "reference_messages_per_sec": round(ref_messages_per_sec),
            "speedup": round(messages_per_sec / ref_messages_per_sec, 2),
        },
        "checker": {
            "history_ops": checker["history_ops"],
            "ops_per_sec": round(checker["ops_per_sec"]),
            "reference_ops_per_sec": round(checker["reference_ops_per_sec"]),
            "fast_states_explored": checker["fast_states_explored"],
            "reference_states_explored": checker["reference_states_explored"],
            "speedup": round(checker["ops_per_sec"]
                             / checker["reference_ops_per_sec"], 1),
        },
        "end_to_end": {
            "scaled_storm": {
                "scenario": end_to_end["scenario"],
                "history_ops": end_to_end["history_ops"],
                "events": end_to_end["events"],
                "messages": end_to_end["messages"],
                "new_total_sec": round(end_to_end["new_total_sec"], 4),
                "reference_total_sec": round(end_to_end["reference_total_sec"], 4),
                "speedup": round(end_to_end["speedup"], 2),
            },
            "scenarios": scenarios,
        },
    }


def check_regression(report: dict, baseline: dict) -> int:
    """Compare calibrated events/sec against the committed baseline.

    Returns 0 when within tolerance, 1 on regression.
    """
    base_rate = baseline["sim"]["events_per_sec"]
    base_probe = baseline.get("calibration_ops_per_sec") or 0
    probe = report["calibration_ops_per_sec"]
    # Without a baseline probe (older schema), compare uncalibrated rather
    # than against a nonsense scale.
    scale = probe / base_probe if base_probe else 1.0
    expected = base_rate * scale
    measured = report["sim"]["events_per_sec"]
    ratio = measured / expected
    print(f"baseline events/sec:  {base_rate:>12,} "
          f"(probe {base_probe:,.0f}/s)" if base_probe else
          f"baseline events/sec:  {base_rate:>12,} (no probe; uncalibrated)")
    print(f"this host's probe:    {probe:>12,.0f}/s (scale x{scale:.2f})")
    print(f"calibrated expected:  {expected:>12,.0f}")
    print(f"measured events/sec:  {measured:>12,} ({ratio:.0%} of expected)")
    if ratio < REGRESSION_TOLERANCE:
        print(f"REGRESSION: below the {REGRESSION_TOLERANCE:.0%} floor "
              f"({1 - REGRESSION_TOLERANCE:.0%} tolerated)")
        return 1
    print("OK: within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized parameters (same schema, smaller sweeps)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH_CORE.json and "
                             "exit non-zero on >30%% events/sec regression "
                             "(the committed baseline is never rewritten in "
                             "this mode; combine with --output to also save "
                             "the fresh report elsewhere)")
    parser.add_argument("--output", default=None,
                        help="where to write the report (default: the repo-root "
                             "BENCH_CORE.json, unless --check is given)")
    args = parser.parse_args(argv)

    # The measurements run once; --check and --output both consume them.
    report = build_report(quick=args.quick)

    out = None
    if args.output is not None:
        out = pathlib.Path(args.output)
    elif not args.check:
        out = BASELINE_PATH
    if out is not None:
        out.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {out}")
    print(json.dumps(report["sim"], indent=1))
    print(json.dumps(report["checker"], indent=1))
    print(json.dumps(report["end_to_end"]["scaled_storm"], indent=1))

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no committed baseline at {BASELINE_PATH}; nothing to check")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        return check_regression(report, baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
