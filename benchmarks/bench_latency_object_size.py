"""E3 -- Operation latency vs. object size (ICDCS'19 evaluation figure family).

Sweeps the value size and reports read/write latency for an ABD-backed and a
TREAS-backed configuration of the same size.  In the simulator, message
*count* (two round trips for both algorithms) dominates simulated latency,
while real deployments also pay transmission time proportional to the bytes
sent; the bench therefore reports both the simulated latency and the bytes
each operation moved, whose ratio (TREAS moves ~k× less) is the shape the
paper's figure shows.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import measure_operation_traffic
from repro.analysis.report import Table
from repro.common.values import Value
from repro.net.latency import UniformLatency
from repro.registers.static import StaticRegisterDeployment

SIZES = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22]
N_SERVERS = 11
K = 7


def run_one(kind: str, value_size: int, seed: int = 0):
    if kind == "treas":
        deployment = StaticRegisterDeployment.treas(
            num_servers=N_SERVERS, k=K, delta=2, num_writers=1, num_readers=1,
            latency=UniformLatency(1.0, 2.0), seed=seed)
    else:
        deployment = StaticRegisterDeployment.abd(
            num_servers=N_SERVERS, num_writers=1, num_readers=1,
            latency=UniformLatency(1.0, 2.0), seed=seed)
    write_traffic = measure_operation_traffic(
        deployment, deployment.writers[0].pid,
        lambda: deployment.write(Value.of_size(value_size, label="x"), 0),
        value_size=value_size, name="write")
    read_traffic = measure_operation_traffic(
        deployment, deployment.readers[0].pid,
        lambda: deployment.read(0), value_size=value_size, name="read")
    write_latency = deployment.history.writes()[-1].latency
    read_latency = deployment.history.reads()[-1].latency
    return write_latency, read_latency, write_traffic.data_bytes, read_traffic.data_bytes


@pytest.mark.experiment("E3")
def test_latency_and_traffic_vs_object_size(benchmark):
    table = Table(
        f"E3: latency (sim time) and data moved per operation vs value size "
        f"(n={N_SERVERS}, k={K})",
        ["size (B)", "abd write lat", "treas write lat", "abd read lat", "treas read lat",
         "abd write B", "treas write B", "abd read B", "treas read B"],
    )
    for size in SIZES:
        abd = run_one("abd", size)
        treas = run_one("treas", size)
        table.add_row(size, abd[0], treas[0], abd[1], treas[1],
                      abd[2], treas[2], abd[3], treas[3])
    table.print()

    benchmark(lambda: run_one("treas", 1 << 16))
if __name__ == "__main__":
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from conftest import main

    raise SystemExit(main(__file__))
